package synth

// The four dataset profiles mirror Table I of the paper. Dimensions
// and split compositions match the table exactly at Scale = 1; the
// anomaly-type rosters match the classes the paper names for each
// dataset.
//
// Pattern/strength assignments encode the scenarios the paper
// motivates: target (high-risk) anomalies are subtle — they deviate
// from normal behaviour mostly inside their own type-specific
// subspaces with a weak shared component — while non-target (low-risk)
// anomalies are conspicuous, deviating strongly along the shared
// anomalous directions every detector picks up. That asymmetry is what
// makes risk-agnostic detectors flood their top ranks with non-target
// false positives, the failure mode TargAD is built to avoid.

// Shared-component multipliers for target vs non-target anomaly types.
const (
	targetCommon    = 0.5
	nonTargetCommon = 1.1
)

// UNSWNB15 emulates the UNSW-NB15 network-intrusion dataset: 196
// features, seven anomaly classes of which Generic, Backdoor and DoS
// are the paper's target classes.
func UNSWNB15() Profile {
	return Profile{
		Name:         "UNSW-NB15",
		Dim:          196,
		NormalGroups: 4,
		Anomalies: []TypeSpec{
			{Name: "Generic", Pattern: PatternShift, Strength: 0.4, SubspaceFrac: 0.1, CommonScale: targetCommon, Variants: 1},
			{Name: "Backdoor", Pattern: PatternSpike, Strength: 0.5, SubspaceFrac: 0.07, CommonScale: targetCommon, Variants: 2},
			{Name: "DoS", Pattern: PatternCorrelated, Strength: 0.45, SubspaceFrac: 0.12, CommonScale: targetCommon, Variants: 1},
			{Name: "Fuzzers", Pattern: PatternScatter, Strength: 0.5, SubspaceFrac: 0.1, CommonScale: nonTargetCommon, RandomSubspace: true},
			{Name: "Analysis", Pattern: PatternShift, Strength: 0.4, SubspaceFrac: 0.09, CommonScale: nonTargetCommon, RandomSubspace: true},
			{Name: "Exploits", Pattern: PatternCorrelated, Strength: 0.45, SubspaceFrac: 0.11, CommonScale: nonTargetCommon, RandomSubspace: true},
			{Name: "Reconnaissance", Pattern: PatternSpike, Strength: 0.5, SubspaceFrac: 0.07, CommonScale: nonTargetCommon, RandomSubspace: true},
		},
		DefaultTargets: []string{"Generic", "Backdoor", "DoS"},
		LabeledPerType: 100, // 300 labeled total
		TrainUnlabeled: 62631,
		Val:            Comp{Normal: 14899, Target: 334, NonTarget: 450},
		Test:           Comp{Normal: 18601, Target: 1666, NonTarget: 2335},
	}
}

// KDDCUP99 emulates the de-duplicated 32-feature KDDCUP99 dataset with
// R2L and DoS as target classes and Probe as the non-target class.
func KDDCUP99() Profile {
	return Profile{
		Name:         "KDDCUP99",
		Dim:          32,
		NormalGroups: 3,
		Anomalies: []TypeSpec{
			{Name: "R2L", Pattern: PatternSpike, Strength: 0.8, SubspaceFrac: 0.25, CommonScale: targetCommon, Variants: 1},
			{Name: "DoS", Pattern: PatternCorrelated, Strength: 0.75, SubspaceFrac: 0.35, CommonScale: targetCommon, Variants: 2},
			{Name: "Probe", Pattern: PatternShift, Strength: 0.65, SubspaceFrac: 0.3, CommonScale: nonTargetCommon, RandomSubspace: true},
		},
		DefaultTargets: []string{"R2L", "DoS"},
		LabeledPerType: 100, // 200 labeled total
		TrainUnlabeled: 58524,
		Val:            Comp{Normal: 13918, Target: 419, NonTarget: 188},
		Test:           Comp{Normal: 17380, Target: 799, NonTarget: 352},
	}
}

// NSLKDD emulates NSL-KDD (the revised KDDCUP99) with 41 features and
// the same target/non-target class partition as KDDCUP99.
func NSLKDD() Profile {
	return Profile{
		Name:         "NSL-KDD",
		Dim:          41,
		NormalGroups: 3,
		Anomalies: []TypeSpec{
			{Name: "R2L", Pattern: PatternSpike, Strength: 0.7, SubspaceFrac: 0.22, CommonScale: targetCommon, Variants: 1},
			{Name: "DoS", Pattern: PatternCorrelated, Strength: 0.65, SubspaceFrac: 0.3, CommonScale: targetCommon, Variants: 2},
			{Name: "Probe", Pattern: PatternShift, Strength: 0.6, SubspaceFrac: 0.28, CommonScale: nonTargetCommon, RandomSubspace: true},
		},
		DefaultTargets: []string{"R2L", "DoS"},
		LabeledPerType: 100,
		TrainUnlabeled: 45385,
		Val:            Comp{Normal: 10743, Target: 487, NonTarget: 366},
		Test:           Comp{Normal: 13492, Target: 749, NonTarget: 629},
	}
}

// SQB emulates the proprietary integrated-payment-platform dataset:
// 182 features, extreme class imbalance, and — per the paper's
// footnote to Table I — evaluation "normals" drawn from the unlabeled
// pool, which hides a residue of real anomalies (EvalNormalContam).
func SQB() Profile {
	return Profile{
		Name:         "SQB",
		Dim:          182,
		NormalGroups: 5,
		Anomalies: []TypeSpec{
			{Name: "Fraud", Pattern: PatternCorrelated, Strength: 0.35, SubspaceFrac: 0.08, CommonScale: targetCommon, Variants: 2},
			{Name: "GamblingRecharge", Pattern: PatternSpike, Strength: 0.4, SubspaceFrac: 0.06, CommonScale: targetCommon, Variants: 1},
			{Name: "ClickFarming", Pattern: PatternShift, Strength: 0.4, SubspaceFrac: 0.09, CommonScale: nonTargetCommon, RandomSubspace: true},
			{Name: "CashOut", Pattern: PatternScatter, Strength: 0.45, SubspaceFrac: 0.08, CommonScale: nonTargetCommon, RandomSubspace: true},
		},
		DefaultTargets:   []string{"Fraud", "GamblingRecharge"},
		LabeledPerType:   106, // 212 labeled total
		TrainUnlabeled:   132028,
		Val:              Comp{Normal: 14671, Target: 23, NonTarget: 142},
		Test:             Comp{Normal: 148323, Target: 236, NonTarget: 1502},
		EvalNormalContam: 0.004,
	}
}

// AllProfiles returns the four benchmark profiles in the paper's
// column order.
func AllProfiles() []Profile {
	return []Profile{UNSWNB15(), KDDCUP99(), NSLKDD(), SQB()}
}

// ProfileByName returns the profile with the given name, or false.
func ProfileByName(name string) (Profile, bool) {
	for _, p := range AllProfiles() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}
