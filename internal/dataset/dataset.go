// Package dataset defines the data containers shared by TargAD, the
// eleven baselines, and the experiment harness: labeled/unlabeled
// training splits, evaluation sets with ground-truth anomaly kinds,
// and tabular preprocessing (min-max scaling, one-hot encoding, CSV
// import/export).
package dataset

import (
	"errors"
	"fmt"

	"targad/internal/mat"
)

// Kind distinguishes the three ground-truth instance categories the
// paper reasons about.
type Kind int8

// Instance kinds.
const (
	KindNormal Kind = iota
	KindTarget
	KindNonTarget
)

// String returns the paper's terminology for the kind.
func (k Kind) String() string {
	switch k {
	case KindNormal:
		return "normal"
	case KindTarget:
		return "target"
	case KindNonTarget:
		return "non-target"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// TrainSet is the training input of the problem definition
// (Section III-A): a few labeled target anomalies D_L plus a large
// unlabeled pool D_U.
type TrainSet struct {
	// Labeled holds the r labeled target anomalies (D_L), one per row.
	Labeled *mat.Matrix
	// LabeledType[i] ∈ [0, NumTargetTypes) is the target anomaly type
	// of Labeled row i.
	LabeledType []int
	// NumTargetTypes is m, the number of target anomaly types.
	NumTargetTypes int

	// Unlabeled holds D_U, one instance per row.
	Unlabeled *mat.Matrix

	// UnlabeledKind records the hidden ground truth of each unlabeled
	// instance. Detectors must never read it; the experiment harness
	// uses it for diagnostics such as the weight-trajectory analysis
	// of Fig. 5.
	UnlabeledKind []Kind
}

// Validate checks internal consistency of the training set.
func (t *TrainSet) Validate() error {
	if t.Labeled == nil || t.Unlabeled == nil {
		return errors.New("dataset: nil labeled or unlabeled matrix")
	}
	if t.Labeled.Rows != len(t.LabeledType) {
		return fmt.Errorf("dataset: %d labeled rows vs %d labels", t.Labeled.Rows, len(t.LabeledType))
	}
	if t.Labeled.Rows > 0 && t.Labeled.Cols != t.Unlabeled.Cols {
		return fmt.Errorf("dataset: labeled dim %d vs unlabeled dim %d", t.Labeled.Cols, t.Unlabeled.Cols)
	}
	if t.NumTargetTypes < 1 {
		return fmt.Errorf("dataset: NumTargetTypes = %d, need >= 1", t.NumTargetTypes)
	}
	for i, ty := range t.LabeledType {
		if ty < 0 || ty >= t.NumTargetTypes {
			return fmt.Errorf("dataset: labeled row %d has type %d outside [0,%d)", i, ty, t.NumTargetTypes)
		}
	}
	if t.UnlabeledKind != nil && len(t.UnlabeledKind) != t.Unlabeled.Rows {
		return fmt.Errorf("dataset: %d unlabeled rows vs %d kinds", t.Unlabeled.Rows, len(t.UnlabeledKind))
	}
	return nil
}

// Dim returns the feature dimensionality D.
func (t *TrainSet) Dim() int { return t.Unlabeled.Cols }

// EvalSet is a labeled evaluation split (validation or testing).
type EvalSet struct {
	X *mat.Matrix
	// Kind is the ground-truth category per row.
	Kind []Kind
	// Type is the sub-type index per row: target type in
	// [0, m) for target rows, non-target type id for non-target rows,
	// normal group id for normal rows. It is informational.
	Type []int
}

// Validate checks internal consistency of the evaluation set.
func (e *EvalSet) Validate() error {
	if e.X == nil {
		return errors.New("dataset: nil eval matrix")
	}
	if e.X.Rows != len(e.Kind) {
		return fmt.Errorf("dataset: %d eval rows vs %d kinds", e.X.Rows, len(e.Kind))
	}
	if e.Type != nil && len(e.Type) != e.X.Rows {
		return fmt.Errorf("dataset: %d eval rows vs %d types", e.X.Rows, len(e.Type))
	}
	return nil
}

// TargetLabels returns the binary ground truth used by AUROC/AUPRC:
// true for target anomalies (output label +1 in the paper), false for
// normal instances and non-target anomalies (−1).
func (e *EvalSet) TargetLabels() []bool {
	out := make([]bool, len(e.Kind))
	for i, k := range e.Kind {
		out[i] = k == KindTarget
	}
	return out
}

// Counts returns how many normal, target, and non-target rows the set
// contains.
func (e *EvalSet) Counts() (normal, target, nonTarget int) {
	for _, k := range e.Kind {
		switch k {
		case KindNormal:
			normal++
		case KindTarget:
			target++
		case KindNonTarget:
			nonTarget++
		}
	}
	return
}

// Bundle groups the three splits of one benchmark dataset.
type Bundle struct {
	Name  string
	Train *TrainSet
	Val   *EvalSet
	Test  *EvalSet
}

// Validate checks every split.
func (b *Bundle) Validate() error {
	if err := b.Train.Validate(); err != nil {
		return fmt.Errorf("train: %w", err)
	}
	if err := b.Val.Validate(); err != nil {
		return fmt.Errorf("val: %w", err)
	}
	if err := b.Test.Validate(); err != nil {
		return fmt.Errorf("test: %w", err)
	}
	return nil
}
