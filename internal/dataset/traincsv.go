package dataset

import (
	"bufio"
	"fmt"
	"os"

	"targad/internal/mat"
)

// LoadTrainCSVs reads a retraining base set in the targad CLI's CSV
// layout: labeled rows carry the target-type index in column 0,
// unlabeled rows are features only. Retrain orchestrators call it once
// per cycle, so an operator can update the CSVs between cycles without
// a restart.
func LoadTrainCSVs(labeledPath, unlabeledPath string, header bool) (*TrainSet, error) {
	labeledRaw, err := loadCSVFile(labeledPath, header)
	if err != nil {
		return nil, err
	}
	unlabeled, err := loadCSVFile(unlabeledPath, header)
	if err != nil {
		return nil, err
	}
	if labeledRaw.Cols < 2 {
		return nil, fmt.Errorf("%s: labeled rows need a type column plus at least one feature", labeledPath)
	}
	labeled := mat.New(labeledRaw.Rows, labeledRaw.Cols-1)
	types := make([]int, labeledRaw.Rows)
	maxType := 0
	for i := 0; i < labeledRaw.Rows; i++ {
		row := labeledRaw.Row(i)
		t := int(row[0])
		if t < 0 {
			return nil, fmt.Errorf("%s: labeled row %d has negative type %v", labeledPath, i, row[0])
		}
		types[i] = t
		if t > maxType {
			maxType = t
		}
		copy(labeled.Row(i), row[1:])
	}
	return &TrainSet{
		Labeled:        labeled,
		LabeledType:    types,
		NumTargetTypes: maxType + 1,
		Unlabeled:      unlabeled,
	}, nil
}

func loadCSVFile(path string, header bool) (*mat.Matrix, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	m, _, err := LoadCSV(bufio.NewReader(f), header)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}
