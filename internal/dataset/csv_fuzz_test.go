package dataset

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// FuzzLoadCSV drives the CSV loader with arbitrary byte streams: it
// must never panic, and any stream it accepts must describe a
// consistent matrix that survives a write/read round trip.
func FuzzLoadCSV(f *testing.F) {
	seeds := []string{
		"",
		"\n",
		"a,b,c\n",                          // header only
		"1,2,3\n4,5,6\n",                   // plain numeric
		"x,y\n1,2\n3,4\n",                  // header + data
		"1,2\n3\n",                         // ragged
		"1,two,3\n",                        // non-numeric field
		"1e308,-1e308,5e-324\n",            // extreme magnitudes
		"NaN,Inf,-Inf\n",                   // non-finite literals
		"\"1\",\" 2\",\"3\"\n",             // quoted fields
		"1,2,3\r\n4,5,6\r\n",               // CRLF
		"\"unterminated,1,2\n",             // broken quoting
		",,\n,,\n",                         // empty fields
		"0x10,1_000,+5\n",                  // Go-flavored numerals
		strings.Repeat("9", 4096) + ",1\n", // huge field
	}
	for _, s := range seeds {
		f.Add([]byte(s), false)
		f.Add([]byte(s), true)
	}
	f.Fuzz(func(t *testing.T, data []byte, hasHeader bool) {
		m, header, err := LoadCSV(bytes.NewReader(data), hasHeader)
		if err != nil {
			return
		}
		if m == nil {
			t.Fatal("nil matrix with nil error")
		}
		if m.Rows < 0 || m.Cols < 0 || len(m.Data) != m.Rows*m.Cols {
			t.Fatalf("inconsistent matrix: %dx%d with %d values", m.Rows, m.Cols, len(m.Data))
		}
		if !hasHeader && header != nil {
			t.Fatal("header returned without hasHeader")
		}
		if hasHeader && m.Rows > 0 && len(header) != m.Cols {
			t.Fatalf("header has %d fields, matrix %d cols", len(header), m.Cols)
		}

		// Accepted input must survive a write/read round trip bit-for-bit
		// (NaN compared as NaN).
		if m.Rows == 0 {
			return
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, m, nil); err != nil {
			t.Fatalf("WriteCSV on accepted matrix: %v", err)
		}
		m2, _, err := LoadCSV(&buf, false)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if m2.Rows != m.Rows || m2.Cols != m.Cols {
			t.Fatalf("round trip resized %dx%d -> %dx%d", m.Rows, m.Cols, m2.Rows, m2.Cols)
		}
		for i := range m.Data {
			a, b := m.Data[i], m2.Data[i]
			if a != b && !(math.IsNaN(a) && math.IsNaN(b)) {
				t.Fatalf("value %d drifted in round trip: %v vs %v", i, a, b)
			}
		}
	})
}
