package dataset

import (
	"math"
	"strings"
	"testing"

	"targad/internal/mat"
)

// Failure-injection tests for the data layer: hostile or corrupted
// inputs must surface as errors or be neutralized deterministically.

func TestScalerNeutralizesInfAndHugeValues(t *testing.T) {
	x, _ := mat.FromRows([][]float64{{0, 1}, {10, 2}})
	s, err := FitMinMax(x)
	if err != nil {
		t.Fatal(err)
	}
	// Test rows with values far outside the fit range clamp to [0,1].
	hostile, _ := mat.FromRows([][]float64{{1e18, -1e18}})
	if err := s.Transform(hostile); err != nil {
		t.Fatal(err)
	}
	for _, v := range hostile.Data {
		if v < 0 || v > 1 || math.IsNaN(v) {
			t.Fatalf("hostile value leaked through scaler: %v", v)
		}
	}
}

func TestCSVRejectsInfNaNTokens(t *testing.T) {
	// Go's ParseFloat accepts "NaN" and "Inf"; the loader keeps them
	// (they are legal float64), so downstream consumers must guard —
	// verify the values round-trip predictably rather than corrupting
	// the matrix silently.
	m, _, err := LoadCSV(strings.NewReader("NaN,Inf\n"), false)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(m.At(0, 0)) || !math.IsInf(m.At(0, 1), 1) {
		t.Fatalf("special tokens mangled: %v", m.Data)
	}
	// And the scaler neutralizes them on transform after a finite fit.
	fit, _ := mat.FromRows([][]float64{{0, 0}, {1, 1}})
	s, err := FitMinMax(fit)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Transform(m); err != nil {
		t.Fatal(err)
	}
	if m.At(0, 1) != 1 {
		t.Fatalf("+Inf should clamp to 1, got %v", m.At(0, 1))
	}
}

func TestValidateCatchesNegativeTypeInjection(t *testing.T) {
	labeled, _ := mat.FromRows([][]float64{{0.1, 0.2}})
	ts := &TrainSet{
		Labeled:        labeled,
		LabeledType:    []int{-1},
		NumTargetTypes: 2,
		Unlabeled:      mat.New(3, 2),
	}
	if err := ts.Validate(); err == nil {
		t.Fatal("negative type index must be rejected")
	}
}
