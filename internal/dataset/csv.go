package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"targad/internal/mat"
)

// LoadCSV reads a numeric CSV into a matrix, optionally skipping a
// header row. Every record must contain the same number of fields.
func LoadCSV(r io.Reader, hasHeader bool) (*mat.Matrix, []string, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	var header []string
	if hasHeader {
		rec, err := cr.Read()
		if err != nil {
			return nil, nil, fmt.Errorf("dataset: reading header: %w", err)
		}
		header = make([]string, len(rec))
		copy(header, rec)
	}
	var rows [][]float64
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, fmt.Errorf("dataset: reading record %d: %w", line, err)
		}
		row := make([]float64, len(rec))
		for j, f := range rec {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, nil, fmt.Errorf("dataset: record %d field %d %q: %w", line, j, f, err)
			}
			row[j] = v
		}
		rows = append(rows, row)
		line++
	}
	m, err := mat.FromRows(rows)
	if err != nil {
		return nil, nil, err
	}
	return m, header, nil
}

// WriteCSV writes the matrix as CSV, with an optional header row.
func WriteCSV(w io.Writer, m *mat.Matrix, header []string) error {
	cw := csv.NewWriter(w)
	if header != nil {
		if len(header) != m.Cols {
			return fmt.Errorf("dataset: header has %d fields, matrix has %d cols", len(header), m.Cols)
		}
		if err := cw.Write(header); err != nil {
			return err
		}
	}
	rec := make([]string, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			rec[j] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
