package dataset

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"targad/internal/mat"
	"targad/internal/rng"
)

func validTrainSet() *TrainSet {
	labeled, _ := mat.FromRows([][]float64{{0.1, 0.2}, {0.3, 0.4}})
	unlabeled, _ := mat.FromRows([][]float64{{0.5, 0.6}, {0.7, 0.8}, {0.9, 1.0}})
	return &TrainSet{
		Labeled:        labeled,
		LabeledType:    []int{0, 1},
		NumTargetTypes: 2,
		Unlabeled:      unlabeled,
		UnlabeledKind:  []Kind{KindNormal, KindNormal, KindNonTarget},
	}
}

func TestTrainSetValidate(t *testing.T) {
	ts := validTrainSet()
	if err := ts.Validate(); err != nil {
		t.Fatal(err)
	}
	if ts.Dim() != 2 {
		t.Fatalf("Dim = %d", ts.Dim())
	}

	bad := validTrainSet()
	bad.LabeledType = []int{0}
	if err := bad.Validate(); err == nil {
		t.Fatal("label count mismatch must error")
	}
	bad = validTrainSet()
	bad.LabeledType = []int{0, 5}
	if err := bad.Validate(); err == nil {
		t.Fatal("out-of-range type must error")
	}
	bad = validTrainSet()
	bad.NumTargetTypes = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero target types must error")
	}
	bad = validTrainSet()
	bad.UnlabeledKind = []Kind{KindNormal}
	if err := bad.Validate(); err == nil {
		t.Fatal("kind count mismatch must error")
	}
	bad = validTrainSet()
	bad.Labeled = mat.New(2, 3)
	if err := bad.Validate(); err == nil {
		t.Fatal("dimensionality mismatch must error")
	}
	bad = validTrainSet()
	bad.Unlabeled = nil
	if err := bad.Validate(); err == nil {
		t.Fatal("nil unlabeled must error")
	}
}

func TestEvalSetHelpers(t *testing.T) {
	x, _ := mat.FromRows([][]float64{{1}, {2}, {3}, {4}})
	e := &EvalSet{
		X:    x,
		Kind: []Kind{KindNormal, KindTarget, KindNonTarget, KindTarget},
		Type: []int{0, 1, 0, 0},
	}
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	labels := e.TargetLabels()
	want := []bool{false, true, false, true}
	for i := range want {
		if labels[i] != want[i] {
			t.Fatalf("TargetLabels = %v", labels)
		}
	}
	n, tg, nt := e.Counts()
	if n != 1 || tg != 2 || nt != 1 {
		t.Fatalf("Counts = %d,%d,%d", n, tg, nt)
	}
	bad := &EvalSet{X: x, Kind: []Kind{KindNormal}}
	if err := bad.Validate(); err == nil {
		t.Fatal("kind mismatch must error")
	}
}

func TestKindString(t *testing.T) {
	if KindNormal.String() != "normal" || KindTarget.String() != "target" ||
		KindNonTarget.String() != "non-target" {
		t.Fatal("Kind.String wrong")
	}
	if !strings.Contains(Kind(9).String(), "9") {
		t.Fatal("unknown Kind should embed value")
	}
}

func TestMinMaxScaler(t *testing.T) {
	x, _ := mat.FromRows([][]float64{{0, 10, 5}, {4, 20, 5}, {2, 15, 5}})
	s, err := FitMinMax(x)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Transform(x); err != nil {
		t.Fatal(err)
	}
	if x.At(0, 0) != 0 || x.At(1, 0) != 1 || x.At(2, 0) != 0.5 {
		t.Fatalf("scaled col0 = %v %v %v", x.At(0, 0), x.At(1, 0), x.At(2, 0))
	}
	// Constant feature maps to 0.
	for i := 0; i < 3; i++ {
		if x.At(i, 2) != 0 {
			t.Fatalf("constant feature must map to 0, got %v", x.At(i, 2))
		}
	}
	// Out-of-range test data clamps.
	test, _ := mat.FromRows([][]float64{{-5, 100, 9}})
	if err := s.Transform(test); err != nil {
		t.Fatal(err)
	}
	if test.At(0, 0) != 0 || test.At(0, 1) != 1 {
		t.Fatalf("clamping failed: %v", test.Row(0))
	}
	if _, err := FitMinMax(mat.New(0, 3)); err == nil {
		t.Fatal("empty fit must error")
	}
	if err := s.Transform(mat.New(1, 2)); err == nil {
		t.Fatal("width mismatch must error")
	}
}

func TestMinMaxScalerPropertyRange(t *testing.T) {
	f := func(seed int64) bool {
		r := rng.New(seed)
		x := mat.New(20, 4)
		r.FillNormal(x.Data, 0, 100)
		s, err := FitMinMax(x)
		if err != nil {
			return false
		}
		if err := s.Transform(x); err != nil {
			return false
		}
		for _, v := range x.Data {
			if v < 0 || v > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestOneHot(t *testing.T) {
	m, err := OneHot([]int{0, 2, 1, 5}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 0) != 1 || m.At(1, 2) != 1 || m.At(2, 1) != 1 {
		t.Fatalf("OneHot = %v", m.Data)
	}
	// Out-of-vocabulary row is all zeros.
	for j := 0; j < 3; j++ {
		if m.At(3, j) != 0 {
			t.Fatal("OOV code must encode to zeros")
		}
	}
	if _, err := OneHot(nil, 0); err == nil {
		t.Fatal("zero cardinality must error")
	}
}

func TestHStackVStack(t *testing.T) {
	a, _ := mat.FromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := mat.FromRows([][]float64{{5}, {6}})
	h, err := HStack(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if h.Cols != 3 || h.At(1, 2) != 6 {
		t.Fatalf("HStack = %v", h.Data)
	}
	if _, err := HStack(a, mat.New(3, 1)); err == nil {
		t.Fatal("row mismatch must error")
	}

	v, err := VStack(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if v.Rows != 4 || v.At(3, 1) != 4 {
		t.Fatalf("VStack = %v", v.Data)
	}
	if _, err := VStack(a, mat.New(1, 3)); err == nil {
		t.Fatal("col mismatch must error")
	}
	// Zero-row operands are skipped.
	v2, err := VStack(mat.New(0, 0), a)
	if err != nil || v2.Rows != 2 {
		t.Fatalf("VStack with empty = %v, %v", v2, err)
	}
	empty, err := VStack()
	if err != nil || empty.Rows != 0 {
		t.Fatalf("empty VStack = %v, %v", empty, err)
	}
}

func TestMustVStackPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustVStack must panic on mismatch")
		}
	}()
	MustVStack(mat.New(1, 2), mat.New(1, 3))
}

func TestCSVRoundTrip(t *testing.T) {
	m, _ := mat.FromRows([][]float64{{1.5, -2}, {0.25, 1e-9}})
	var buf bytes.Buffer
	if err := WriteCSV(&buf, m, []string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	got, header, err := LoadCSV(&buf, true)
	if err != nil {
		t.Fatal(err)
	}
	if header[0] != "a" || header[1] != "b" {
		t.Fatalf("header = %v", header)
	}
	for i := range m.Data {
		if m.Data[i] != got.Data[i] {
			t.Fatalf("roundtrip mismatch: %v vs %v", m.Data, got.Data)
		}
	}
}

func TestCSVErrors(t *testing.T) {
	if _, _, err := LoadCSV(strings.NewReader("1,notanumber\n"), false); err == nil {
		t.Fatal("bad float must error")
	}
	if _, _, err := LoadCSV(strings.NewReader("1,2\n3\n"), false); err == nil {
		t.Fatal("ragged CSV must error")
	}
	m := mat.New(1, 2)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, m, []string{"only-one"}); err == nil {
		t.Fatal("header width mismatch must error")
	}
}

func TestBundleValidate(t *testing.T) {
	x, _ := mat.FromRows([][]float64{{0.1, 0.2}})
	b := &Bundle{
		Name:  "t",
		Train: validTrainSet(),
		Val:   &EvalSet{X: x, Kind: []Kind{KindNormal}},
		Test:  &EvalSet{X: x, Kind: []Kind{KindTarget}},
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	b.Val = &EvalSet{X: x, Kind: nil}
	if err := b.Validate(); err == nil {
		t.Fatal("invalid val split must propagate")
	}
}
