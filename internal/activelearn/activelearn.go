// Package activelearn is the budgeted label-acquisition policy: given
// a stream of served rows and a fixed analyst budget, it keeps the
// rows whose labels would move the model most, so the analyst labels
// what matters instead of a random sample of traffic.
//
// The informativeness of a row blends the two signals the SDA²E-style
// active-learning literature uses for exactly this setting:
//
//   - Uncertainty: how close the served S^tar score sits to the
//     calibrated decision threshold. A row the model barely called is
//     the row whose label resolves the most ambiguity.
//   - Similarity: how close the row lies to the centroid of the rows
//     analysts have already confirmed as targets. The paper's premise
//     is that labeled targets are scarce; rows resembling the known
//     targets are the likeliest new D_L members.
//
// The queue is a bounded priority queue keyed by that blend: when the
// budget is full, a more informative row evicts the least informative
// one. Rows already labeled (the caller wires a fingerprint filter,
// typically feedback.Store.Has) and rows already queued are never
// duplicated.
package activelearn

import (
	"container/heap"
	"math"
	"sort"
	"sync"

	"targad/internal/feedback"
)

// Config tunes the acquisition policy. Zero values take defaults.
type Config struct {
	// Budget bounds the queue: at most this many candidate rows are
	// held, the least informative evicted first (default 256).
	Budget int
	// UncertaintyWeight and SimilarityWeight blend the two
	// informativeness terms (defaults 0.7 / 0.3). They are normalized
	// at New, so only their ratio matters.
	UncertaintyWeight, SimilarityWeight float64
	// Labeled, when set, filters out rows that already carry a
	// verdict (wire feedback.Store.Has here).
	Labeled func(fp uint64) bool
}

// Item is one acquisition candidate, most informative first in TopN.
type Item struct {
	Fingerprint  uint64    `json:"-"`
	Features     []float64 `json:"features"`
	Score        float64   `json:"score"`
	Decision     string    `json:"decision,omitempty"`
	ModelVersion int64     `json:"model_version"`
	Info         float64   `json:"info"`
}

// entry is one queued row plus its heap index.
type entry struct {
	item Item
	idx  int // position in the min-heap
}

// Stats counts the queue's lifetime traffic for /metrics.
type Stats struct {
	Offered  int64 // rows offered to the queue
	Admitted int64 // rows that entered (or refreshed) the queue
	Evicted  int64 // rows pushed out by more informative ones
	Depth    int   // rows currently held
	Labeled  int64 // labeled-target observations folded into the centroid
}

// Queue is the bounded acquisition queue. Safe for concurrent use.
type Queue struct {
	cfg Config

	mu    sync.Mutex
	byFP  map[uint64]*entry
	h     entryHeap // min-heap on Info: h.es[0] is the eviction victim
	free  [][]float64
	stats Stats

	// centroid is the running mean of analyst-confirmed target rows;
	// nLabeled counts them. Rows of a different width than the
	// centroid reset it (a model/schema change).
	centroid []float64
	nLabeled int64
}

// New builds a queue from cfg.
func New(cfg Config) *Queue {
	if cfg.Budget <= 0 {
		cfg.Budget = 256
	}
	if cfg.UncertaintyWeight <= 0 && cfg.SimilarityWeight <= 0 {
		cfg.UncertaintyWeight, cfg.SimilarityWeight = 0.7, 0.3
	}
	if s := cfg.UncertaintyWeight + cfg.SimilarityWeight; s > 0 {
		cfg.UncertaintyWeight /= s
		cfg.SimilarityWeight /= s
	}
	return &Queue{cfg: cfg, byFP: make(map[uint64]*entry)}
}

// Informativeness returns the blended acquisition score of a row:
// uncertainty decays with the |score − threshold| distance to the
// calibrated S^tar cut, similarity with the mean squared distance to
// the labeled-target centroid (0 until any target is confirmed).
func (q *Queue) Informativeness(features []float64, score, threshold float64) float64 {
	u := 1 / (1 + 8*math.Abs(score-threshold))
	q.mu.Lock()
	c := q.centroid
	q.mu.Unlock()
	s := 0.0
	if len(c) == len(features) && len(c) > 0 {
		var msd float64
		for i, v := range features {
			d := v - c[i]
			msd += d * d
		}
		msd /= float64(len(features))
		s = 1 / (1 + msd)
	}
	return q.cfg.UncertaintyWeight*u + q.cfg.SimilarityWeight*s
}

// Offer proposes one served row. threshold is the calibrated S^tar
// cut of the serving model (1 − k/(m+k)); decision the served 3-way
// call ("" when none). The row enters the queue when it is unlabeled,
// not yet queued (a re-offer refreshes score and informativeness in
// place), and either the budget has room or it beats the least
// informative entry. The feature slice is copied on admission.
func (q *Queue) Offer(features []float64, score, threshold float64, decision string, modelVersion int64) bool {
	if len(features) == 0 {
		return false
	}
	fp := feedback.Fingerprint(features)
	if q.cfg.Labeled != nil && q.cfg.Labeled(fp) {
		return false
	}
	info := q.Informativeness(features, score, threshold)

	q.mu.Lock()
	defer q.mu.Unlock()
	q.stats.Offered++
	if e, ok := q.byFP[fp]; ok {
		e.item.Score = score
		e.item.Decision = decision
		e.item.ModelVersion = modelVersion
		e.item.Info = info
		heap.Fix(&q.h, e.idx)
		q.stats.Admitted++
		return true
	}
	if len(q.h.es) >= q.cfg.Budget {
		if info <= q.h.es[0].item.Info {
			return false
		}
		victim := heap.Pop(&q.h).(*entry)
		delete(q.byFP, victim.item.Fingerprint)
		q.recycle(victim.item.Features)
		q.stats.Evicted++
	}
	e := &entry{item: Item{
		Fingerprint:  fp,
		Features:     q.copyRow(features),
		Score:        score,
		Decision:     decision,
		ModelVersion: modelVersion,
		Info:         info,
	}}
	heap.Push(&q.h, e)
	q.byFP[fp] = e
	q.stats.Admitted++
	return true
}

// Remove drops a row from the queue — typically because its verdict
// just arrived.
func (q *Queue) Remove(fp uint64) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	e, ok := q.byFP[fp]
	if !ok {
		return false
	}
	heap.Remove(&q.h, e.idx)
	delete(q.byFP, fp)
	q.recycle(e.item.Features)
	return true
}

// ObserveLabeledTarget folds one analyst-confirmed target row into the
// running centroid the similarity term measures against.
func (q *Queue) ObserveLabeledTarget(features []float64) {
	if len(features) == 0 {
		return
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.centroid) != len(features) {
		q.centroid = make([]float64, len(features))
		q.nLabeled = 0
	}
	q.nLabeled++
	q.stats.Labeled++
	inv := 1 / float64(q.nLabeled)
	for i, v := range features {
		q.centroid[i] += (v - q.centroid[i]) * inv
	}
}

// TopN returns up to n candidates, most informative first (ties broken
// by fingerprint for deterministic output). Features are copied, so
// the result stays valid after concurrent evictions.
func (q *Queue) TopN(n int) []Item {
	q.mu.Lock()
	items := make([]Item, len(q.h.es))
	for i, e := range q.h.es {
		items[i] = e.item
		items[i].Features = append([]float64(nil), e.item.Features...)
	}
	q.mu.Unlock()
	sort.Slice(items, func(i, j int) bool {
		if items[i].Info != items[j].Info {
			return items[i].Info > items[j].Info
		}
		return items[i].Fingerprint < items[j].Fingerprint
	})
	if n >= 0 && n < len(items) {
		items = items[:n]
	}
	return items
}

// Len returns the current queue depth.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.h.es)
}

// Budget returns the configured capacity.
func (q *Queue) Budget() int { return q.cfg.Budget }

// Stats returns the lifetime counters.
func (q *Queue) Stats() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	st := q.stats
	st.Depth = len(q.h.es)
	return st
}

// copyRow copies features into a recycled slice when one fits.
func (q *Queue) copyRow(features []float64) []float64 {
	for i := len(q.free) - 1; i >= 0; i-- {
		if cap(q.free[i]) >= len(features) {
			dst := q.free[i][:len(features)]
			q.free[i] = q.free[len(q.free)-1]
			q.free = q.free[:len(q.free)-1]
			copy(dst, features)
			return dst
		}
	}
	return append([]float64(nil), features...)
}

// recycle returns an evicted row's slice to the free list (bounded by
// the budget, the most slices ever simultaneously evictable).
func (q *Queue) recycle(row []float64) {
	if len(q.free) < q.cfg.Budget {
		q.free = append(q.free, row)
	}
}

// entryHeap is a min-heap on informativeness (container/heap).
type entryHeap struct{ es []*entry }

func (h *entryHeap) Len() int { return len(h.es) }
func (h *entryHeap) Less(i, j int) bool {
	if h.es[i].item.Info != h.es[j].item.Info {
		return h.es[i].item.Info < h.es[j].item.Info
	}
	// Equal informativeness: evict the larger fingerprint first so
	// eviction order is deterministic.
	return h.es[i].item.Fingerprint > h.es[j].item.Fingerprint
}
func (h *entryHeap) Swap(i, j int) {
	h.es[i], h.es[j] = h.es[j], h.es[i]
	h.es[i].idx = i
	h.es[j].idx = j
}
func (h *entryHeap) Push(x any) {
	e := x.(*entry)
	e.idx = len(h.es)
	h.es = append(h.es, e)
}
func (h *entryHeap) Pop() any {
	e := h.es[len(h.es)-1]
	h.es = h.es[:len(h.es)-1]
	return e
}
