package activelearn

import (
	"math"
	"testing"

	"targad/internal/feedback"
)

func TestBudgetEvictsLeastInformative(t *testing.T) {
	q := New(Config{Budget: 3, UncertaintyWeight: 1})
	const thr = 0.5
	// Scores at increasing distance from the threshold: row 0 is the
	// most informative, row 4 the least.
	scores := []float64{0.5, 0.45, 0.6, 0.8, 0.05}
	for i, s := range scores {
		q.Offer([]float64{float64(i), 1}, s, thr, "", 1)
	}
	if q.Len() != 3 {
		t.Fatalf("Len = %d, want budget 3", q.Len())
	}
	top := q.TopN(-1)
	want := map[float64]bool{0: true, 1: true, 2: true} // the three closest to thr
	for _, it := range top {
		if !want[it.Features[0]] {
			t.Fatalf("row %v survived; want only the three most informative", it.Features[0])
		}
	}
	for i := 1; i < len(top); i++ {
		if top[i].Info > top[i-1].Info {
			t.Fatalf("TopN not sorted: info[%d]=%v > info[%d]=%v", i, top[i].Info, i-1, top[i-1].Info)
		}
	}
}

func TestOfferDedupsAndRefreshes(t *testing.T) {
	q := New(Config{Budget: 8})
	row := []float64{1, 2, 3}
	q.Offer(row, 0.9, 0.5, "target", 1)
	q.Offer(row, 0.51, 0.5, "normal", 2) // same row, new score
	if q.Len() != 1 {
		t.Fatalf("Len = %d after re-offer, want 1", q.Len())
	}
	it := q.TopN(1)[0]
	if it.Score != 0.51 || it.ModelVersion != 2 || it.Decision != "normal" {
		t.Fatalf("re-offer did not refresh: %+v", it)
	}
}

func TestLabeledFilterAndRemove(t *testing.T) {
	labeled := map[uint64]bool{}
	q := New(Config{Budget: 8, Labeled: func(fp uint64) bool { return labeled[fp] }})
	row := []float64{4, 5}
	fp := feedback.Fingerprint(row)

	labeled[fp] = true
	if q.Offer(row, 0.5, 0.5, "", 1) {
		t.Fatal("Offer admitted an already-labeled row")
	}
	delete(labeled, fp)
	if !q.Offer(row, 0.5, 0.5, "", 1) {
		t.Fatal("Offer rejected an unlabeled row with free budget")
	}
	if !q.Remove(fp) || q.Len() != 0 {
		t.Fatal("Remove failed to drop the queued row")
	}
	if q.Remove(fp) {
		t.Fatal("Remove reported dropping an absent row")
	}
}

func TestSimilarityPullsTowardLabeledTargets(t *testing.T) {
	q := New(Config{Budget: 8, UncertaintyWeight: 0.5, SimilarityWeight: 0.5})
	// Before any labeled target, similarity contributes nothing.
	base := q.Informativeness([]float64{0, 0}, 0.9, 0.5)
	q.ObserveLabeledTarget([]float64{0, 0})
	q.ObserveLabeledTarget([]float64{0.2, 0})
	near := q.Informativeness([]float64{0.1, 0}, 0.9, 0.5)
	far := q.Informativeness([]float64{50, 50}, 0.9, 0.5)
	if !(near > far) {
		t.Fatalf("near-centroid info %v not above far %v", near, far)
	}
	if !(near > base) {
		t.Fatalf("similarity term did not raise info: %v vs baseline %v", near, base)
	}
}

func TestUncertaintyPeaksAtThreshold(t *testing.T) {
	q := New(Config{Budget: 8, UncertaintyWeight: 1})
	at := q.Informativeness([]float64{1}, 0.5, 0.5)
	off := q.Informativeness([]float64{1}, 0.9, 0.5)
	if !(at > off) {
		t.Fatalf("info at threshold %v not above off-threshold %v", at, off)
	}
	if math.Abs(at-1) > 1e-12 {
		t.Fatalf("info at threshold = %v, want 1", at)
	}
}

func TestStats(t *testing.T) {
	q := New(Config{Budget: 1, UncertaintyWeight: 1})
	q.Offer([]float64{1}, 0.5, 0.5, "", 1)  // admit
	q.Offer([]float64{2}, 0.49, 0.5, "", 1) // evict row 1? no: less informative → rejected
	q.Offer([]float64{3}, 0.5, 0.5, "", 1)  // ties do not evict (must beat the min)
	st := q.Stats()
	if st.Offered != 3 || st.Admitted != 1 || st.Evicted != 0 || st.Depth != 1 {
		t.Fatalf("Stats = %+v", st)
	}
	// A strictly more informative row within eps... use a closer score.
	q2 := New(Config{Budget: 1, UncertaintyWeight: 1})
	q2.Offer([]float64{1}, 0.8, 0.5, "", 1)
	q2.Offer([]float64{2}, 0.5, 0.5, "", 1) // strictly better → evicts
	st2 := q2.Stats()
	if st2.Evicted != 1 || st2.Depth != 1 {
		t.Fatalf("Stats after eviction = %+v", st2)
	}
	if got := q2.TopN(1)[0].Features[0]; got != 2 {
		t.Fatalf("surviving row %v, want the more informative 2", got)
	}
}
