package autoencoder

import (
	"context"
	"testing"

	"targad/internal/mat"
	"targad/internal/metrics"
	"targad/internal/rng"
)

// toyData builds normals clustered near two modes and anomalies far
// from both, in [0,1]^d.
func toyData(r *rng.RNG, nNormal, nAnom, d int) (normals, anomalies *mat.Matrix) {
	normals = mat.New(nNormal, d)
	for i := 0; i < nNormal; i++ {
		center := 0.3
		if i%2 == 0 {
			center = 0.6
		}
		for j := 0; j < d; j++ {
			v := r.Normal(center, 0.05)
			normals.Set(i, j, clamp(v))
		}
	}
	anomalies = mat.New(nAnom, d)
	for i := 0; i < nAnom; i++ {
		for j := 0; j < d; j++ {
			if j%3 == 0 {
				anomalies.Set(i, j, clamp(r.Normal(0.95, 0.03)))
			} else {
				anomalies.Set(i, j, clamp(r.Normal(0.45, 0.05)))
			}
		}
	}
	return normals, anomalies
}

func clamp(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func TestConfigValidation(t *testing.T) {
	r := rng.New(1)
	if _, err := New(Config{InputDim: 0}, r); err == nil {
		t.Fatal("zero input dim must error")
	}
	ae, err := New(Default(8), r)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ae.Train(nil, nil, r); err == nil {
		t.Fatal("nil unlabeled must error")
	}
	if _, err := ae.Train(mat.New(3, 5), nil, r); err == nil {
		t.Fatal("wrong unlabeled dim must error")
	}
	if _, err := ae.Train(mat.New(3, 8), mat.New(1, 5), r); err == nil {
		t.Fatal("wrong labeled dim must error")
	}
	if _, err := ae.ReconstructionErrors(mat.New(1, 5)); err == nil {
		t.Fatal("wrong score dim must error")
	}
}

func TestTrainingReducesLoss(t *testing.T) {
	r := rng.New(2)
	normals, _ := toyData(r, 200, 0, 10)
	cfg := Config{InputDim: 10, Hidden: []int{8, 4}, Eta: 0, LR: 5e-3, BatchSize: 32, Epochs: 15}
	ae, err := New(cfg, r)
	if err != nil {
		t.Fatal(err)
	}
	losses, err := ae.Train(normals, nil, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(losses) != 15 {
		t.Fatalf("expected 15 epoch losses, got %d", len(losses))
	}
	if losses[len(losses)-1] >= losses[0] {
		t.Fatalf("loss did not decrease: %v -> %v", losses[0], losses[len(losses)-1])
	}
}

func TestAnomaliesReconstructWorse(t *testing.T) {
	r := rng.New(3)
	normals, anomalies := toyData(r, 300, 60, 12)
	cfg := Config{InputDim: 12, Hidden: []int{8, 4}, Eta: 0, LR: 5e-3, BatchSize: 32, Epochs: 25}
	ae, err := New(cfg, r)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ae.Train(normals, nil, r); err != nil {
		t.Fatal(err)
	}
	en, err := ae.ReconstructionErrors(normals)
	if err != nil {
		t.Fatal(err)
	}
	ea, err := ae.ReconstructionErrors(anomalies)
	if err != nil {
		t.Fatal(err)
	}
	if mat.Mean(ea) <= mat.Mean(en) {
		t.Fatalf("anomaly recon error %v not above normal %v", mat.Mean(ea), mat.Mean(en))
	}
}

func TestEtaPenaltyRaisesAnomalyError(t *testing.T) {
	// Eq. (1): with labeled anomalies and eta > 0 the AE should
	// separate anomalies (by recon-error ranking) at least as well as
	// without.
	r := rng.New(4)
	normals, anomalies := toyData(r, 300, 60, 12)
	labeled := mat.New(20, 12)
	for i := 0; i < 20; i++ {
		copy(labeled.Row(i), anomalies.Row(i))
	}
	rank := func(eta float64, seed int64) float64 {
		rr := rng.New(seed)
		cfg := Config{InputDim: 12, Hidden: []int{8, 4}, Eta: eta, LR: 5e-3, BatchSize: 32, Epochs: 25}
		ae, err := New(cfg, rr)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ae.Train(normals, labeled, rr); err != nil {
			t.Fatal(err)
		}
		en, _ := ae.ReconstructionErrors(normals)
		ea, _ := ae.ReconstructionErrors(anomalies.Clone())
		scores := append(en, ea...)
		labels := make([]bool, len(scores))
		for i := len(en); i < len(scores); i++ {
			labels[i] = true
		}
		v, err := metrics.AUROC(scores, labels)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	with := rank(1, 10)
	if with < 0.9 {
		t.Fatalf("eta=1 separation AUROC = %v, want >= 0.9", with)
	}
}

func TestEncoderOutputsBottleneckWidth(t *testing.T) {
	r := rng.New(5)
	cfg := Config{InputDim: 10, Hidden: []int{8, 3}, LR: 1e-3, BatchSize: 16, Epochs: 1}
	ae, err := New(cfg, r)
	if err != nil {
		t.Fatal(err)
	}
	x := mat.New(4, 10)
	r.FillUniform(x.Data, 0, 1)
	z, err := ae.Encoder(x)
	if err != nil {
		t.Fatal(err)
	}
	if z.Rows != 4 || z.Cols != 3 {
		t.Fatalf("Encoder output %dx%d, want 4x3", z.Rows, z.Cols)
	}
}

func TestReconstructInUnitRange(t *testing.T) {
	r := rng.New(6)
	ae, err := New(Config{InputDim: 6, Hidden: []int{4, 2}, LR: 1e-3, BatchSize: 8, Epochs: 1}, r)
	if err != nil {
		t.Fatal(err)
	}
	x := mat.New(10, 6)
	r.FillUniform(x.Data, 0, 1)
	if _, err := ae.Train(x, nil, r); err != nil {
		t.Fatal(err)
	}
	rec, err := ae.Reconstruct(x)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rec.Data {
		if v < 0 || v > 1 {
			t.Fatalf("sigmoid output out of range: %v", v)
		}
	}
}

func TestTrainPerCluster(t *testing.T) {
	r := rng.New(7)
	normals, _ := toyData(r, 120, 0, 8)
	clusters := [][]int{{}, {}}
	for i := 0; i < normals.Rows; i++ {
		clusters[i%2] = append(clusters[i%2], i)
	}
	cfg := Config{InputDim: 8, Hidden: []int{6, 3}, LR: 5e-3, BatchSize: 16, Epochs: 5}
	aes, scores, err := TrainPerCluster(context.Background(), normals, nil, clusters, cfg, r, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(aes) != 2 {
		t.Fatalf("expected 2 AEs, got %d", len(aes))
	}
	if len(scores) != normals.Rows {
		t.Fatalf("expected %d scores, got %d", normals.Rows, len(scores))
	}
	// Scores must be scattered back to the right rows: recompute row
	// 0's error with its own cluster's AE.
	c0 := clusters[0][0]
	one := mat.New(1, 8)
	copy(one.Row(0), normals.Row(c0))
	es, err := aes[0].ReconstructionErrors(one)
	if err != nil {
		t.Fatal(err)
	}
	if es[0] != scores[c0] {
		t.Fatalf("score scatter mismatch: %v vs %v", es[0], scores[c0])
	}
	if _, _, err := TrainPerCluster(context.Background(), normals, nil, nil, cfg, r, nil); err == nil {
		t.Fatal("no clusters must error")
	}
}
