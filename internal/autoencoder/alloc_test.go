package autoencoder

import (
	"testing"

	"targad/internal/mat"
	"targad/internal/parallel"
	"targad/internal/rng"
)

// TestTrainEpochSteadyStateAllocs verifies the autoencoder's epoch
// loop allocates nothing once its workspaces are warm. Each Train call
// pays a fixed setup cost (optimizer state, batcher, loss slice), so
// the per-epoch cost is isolated by differencing a 1-epoch and a
// 6-epoch run of otherwise identical configuration: the extra five
// epochs must add zero allocations.
func TestTrainEpochSteadyStateAllocs(t *testing.T) {
	prev := parallel.SetWorkers(1)
	defer parallel.SetWorkers(prev)

	x := mat.New(128, 12)
	rng.New(1).FillUniform(x.Data, 0, 1)
	lab := mat.New(6, 12)
	rng.New(2).FillUniform(lab.Data, 0, 1)

	run := func(epochs int) func() {
		cfg := Config{InputDim: 12, Hidden: []int{8, 4}, Eta: 1, LR: 1e-3, BatchSize: 32, Epochs: epochs}
		ae, err := New(cfg, rng.New(3))
		if err != nil {
			t.Fatal(err)
		}
		// Warm the workspaces so AllocsPerRun sees only steady state.
		if _, err := ae.Train(x, lab, rng.New(4)); err != nil {
			t.Fatal(err)
		}
		return func() {
			if _, err := ae.Train(x, lab, rng.New(5)); err != nil {
				t.Fatal(err)
			}
		}
	}

	short := testing.AllocsPerRun(3, run(1))
	long := testing.AllocsPerRun(3, run(6))
	if extra := long - short; extra > 0.5 {
		t.Fatalf("5 extra epochs allocate %.1f times (1 epoch: %.1f, 6 epochs: %.1f), want 0", extra, short, long)
	}
}
