// Package autoencoder implements the candidate-selection autoencoder
// of TargAD (Section III-B1): a bottleneck MLP trained on one
// unlabeled cluster with the semi-supervised loss of Eq. (1), which
// adds a DeepSAD-inspired inverse reconstruction penalty for labeled
// target anomalies so that anomalies reconstruct poorly.
package autoencoder

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"

	"targad/internal/faultinject"
	"targad/internal/mat"
	"targad/internal/nn"
	"targad/internal/parallel"
	"targad/internal/rng"
)

// Config controls one autoencoder.
type Config struct {
	// InputDim is the feature dimensionality D.
	InputDim int
	// Hidden lists the encoder hidden widths, bottleneck last
	// (e.g. {64, 32}); the decoder mirrors it. Empty uses a default
	// sized from InputDim.
	Hidden []int
	// Eta is the trade-off η of Eq. (1) weighting the labeled-anomaly
	// inverse-error penalty (paper default 1).
	Eta float64
	// LR is the Adam learning rate (paper default 1e-4).
	LR float64
	// BatchSize is the unlabeled mini-batch size (paper default 256).
	BatchSize int
	// Epochs is the number of passes over the cluster (paper
	// default 30).
	Epochs int
}

// Default returns the paper's hyperparameters for dimensionality d.
func Default(d int) Config {
	return Config{
		InputDim:  d,
		Hidden:    defaultHidden(d),
		Eta:       1,
		LR:        1e-4,
		BatchSize: 256,
		Epochs:    30,
	}
}

func defaultHidden(d int) []int {
	h1 := d / 2
	if h1 < 16 {
		h1 = 16
	}
	h2 := d / 4
	if h2 < 8 {
		h2 = 8
	}
	return []int{h1, h2}
}

// invErrEps floors the reconstruction error inside the inverse penalty
// so a perfectly reconstructed labeled anomaly cannot blow up the
// loss.
const invErrEps = 1e-3

// AE is a trained autoencoder.
type AE struct {
	cfg Config
	net *nn.MLP

	// Training workspaces, sized on first use and reused across batches
	// and Train calls so steady-state epochs allocate nothing.
	xb    *mat.Matrix // gathered unlabeled mini-batch
	grad  *mat.Matrix // reconstruction-loss gradient
	gradL *mat.Matrix // inverse-loss gradient for labeled anomalies
}

// New builds an untrained autoencoder.
func New(cfg Config, r *rng.RNG) (*AE, error) {
	if cfg.InputDim <= 0 {
		return nil, fmt.Errorf("autoencoder: input dim %d", cfg.InputDim)
	}
	if len(cfg.Hidden) == 0 {
		cfg.Hidden = defaultHidden(cfg.InputDim)
	}
	dims := []int{cfg.InputDim}
	dims = append(dims, cfg.Hidden...)
	for i := len(cfg.Hidden) - 2; i >= 0; i-- {
		dims = append(dims, cfg.Hidden[i])
	}
	dims = append(dims, cfg.InputDim)
	net, err := nn.NewMLP(nn.MLPConfig{
		Dims:   dims,
		Hidden: nn.ReLU,
		Output: nn.Sigmoid, // inputs are min-max scaled to [0,1]
		Init:   nn.HeNormal,
	}, r)
	if err != nil {
		return nil, err
	}
	return &AE{cfg: cfg, net: net}, nil
}

// Train fits the autoencoder on one unlabeled cluster with the Eq. (1)
// loss. labeled may be nil or empty (η term skipped), which recovers a
// conventional unsupervised autoencoder — the η = 0 ablation of
// Fig. 7(a). It returns the mean epoch losses.
//
// Train is TrainCtx without cancellation.
func (ae *AE) Train(unlabeled, labeled *mat.Matrix, r *rng.RNG) ([]float64, error) {
	return ae.TrainCtx(context.Background(), unlabeled, labeled, r)
}

// TrainCtx is Train with cooperative cancellation (checked at every
// epoch boundary) and numerical-health guards: a non-finite or
// diverging epoch loss, or a non-finite parameter, aborts training
// with a *nn.NumericalError instead of silently returning a NaN
// model.
func (ae *AE) TrainCtx(ctx context.Context, unlabeled, labeled *mat.Matrix, r *rng.RNG) ([]float64, error) {
	if unlabeled == nil || unlabeled.Rows == 0 {
		return nil, errors.New("autoencoder: empty unlabeled cluster")
	}
	if unlabeled.Cols != ae.cfg.InputDim {
		return nil, fmt.Errorf("autoencoder: unlabeled dim %d, want %d", unlabeled.Cols, ae.cfg.InputDim)
	}
	useLabeled := ae.cfg.Eta != 0 && labeled != nil && labeled.Rows > 0
	if useLabeled && labeled.Cols != ae.cfg.InputDim {
		return nil, fmt.Errorf("autoencoder: labeled dim %d, want %d", labeled.Cols, ae.cfg.InputDim)
	}

	opt := nn.NewAdam(ae.cfg.LR)
	batcher := nn.NewBatcher(unlabeled.Rows, ae.cfg.BatchSize, r)
	losses := make([]float64, 0, ae.cfg.Epochs)
	var firstLoss float64
	haveFirst := false
	for epoch := 0; epoch < ae.cfg.Epochs; epoch++ {
		if err := ctx.Err(); err != nil {
			return losses, fmt.Errorf("autoencoder: canceled at epoch %d: %w", epoch, err)
		}
		var epochLoss float64
		nb := batcher.BatchesPerEpoch()
		for b := 0; b < nb; b++ {
			idx := batcher.Next()
			ae.xb = nn.GatherInto(ae.xb, unlabeled, idx)
			if faultinject.Fire(faultinject.AEBatchNaN) {
				ae.xb.Data[0] = math.NaN()
			}
			ae.net.ZeroGrad()

			// Unlabeled reconstruction term.
			rec := ae.net.Forward(ae.xb)
			loss, grad := reconLossGradInto(ae.grad, rec, ae.xb)
			ae.grad = grad
			ae.net.Backward(grad)

			// Labeled inverse-error term (Eq. 1, second summand).
			if useLabeled {
				recL := ae.net.Forward(labeled)
				l2, g2 := inverseLossGradInto(ae.gradL, recL, labeled, ae.cfg.Eta)
				ae.gradL = g2
				ae.net.Backward(g2)
				loss += l2
			}
			opt.Step(ae.net.Params())
			epochLoss += loss
		}
		mean := epochLoss / float64(nb)
		losses = append(losses, mean)
		// Numerical-health sentinels (per epoch): a poisoned batch or
		// runaway optimization must fail loudly, not return NaN
		// weights to the candidate-selection stage.
		if !nn.Finite(mean) || (haveFirst && nn.Diverged(mean, firstLoss)) {
			detail := "non-finite epoch loss"
			if nn.Finite(mean) {
				detail = "diverging epoch loss"
			}
			return losses, &nn.NumericalError{Stage: "autoencoder", Cluster: -1, Epoch: epoch, Detail: detail, Value: mean}
		}
		if !haveFirst {
			firstLoss, haveFirst = mean, true
		}
		if name := nn.NonFiniteParam(ae.net.Params()); name != "" {
			return losses, &nn.NumericalError{Stage: "autoencoder", Cluster: -1, Epoch: epoch, Detail: "non-finite parameter " + name, Value: mean}
		}
	}
	return losses, nil
}

// reconLossGradInto returns (1/n)Σ‖x−r‖² and its gradient w.r.t. r,
// written into dst (grown or allocated via mat.Ensure and returned).
func reconLossGradInto(dst, rec, x *mat.Matrix) (float64, *mat.Matrix) {
	n := float64(rec.Rows)
	grad := mat.Ensure(dst, rec.Rows, rec.Cols)
	var loss float64
	for i, rv := range rec.Data {
		d := rv - x.Data[i]
		loss += d * d
		grad.Data[i] = 2 * d / n
	}
	return loss / n, grad
}

// inverseLossGradInto returns (η/n)Σ(‖x−r‖²)⁻¹ and its gradient
// w.r.t. r, written into dst (grown or allocated via mat.Ensure and
// returned).
func inverseLossGradInto(dst, rec, x *mat.Matrix, eta float64) (float64, *mat.Matrix) {
	n := float64(rec.Rows)
	grad := mat.Ensure(dst, rec.Rows, rec.Cols)
	var loss float64
	for i := 0; i < rec.Rows; i++ {
		rr, xr := rec.Row(i), x.Row(i)
		e := mat.SquaredDistance(rr, xr) + invErrEps
		loss += eta / n / e
		coef := -2 * eta / n / (e * e)
		gr := grad.Row(i)
		for j := range rr {
			gr[j] = coef * (rr[j] - xr[j])
		}
	}
	return loss, grad
}

// Reconstruct returns the autoencoder's reconstruction of each row.
// The result is caller-owned (a copy, not the network's workspace), so
// it survives later forward passes through the same autoencoder.
func (ae *AE) Reconstruct(x *mat.Matrix) (*mat.Matrix, error) {
	if x.Cols != ae.cfg.InputDim {
		return nil, fmt.Errorf("autoencoder: input dim %d, want %d", x.Cols, ae.cfg.InputDim)
	}
	return ae.net.Forward(x).Clone(), nil
}

// ReconstructionErrors returns S^Rec(x) = ‖x − φ_D(φ_E(x))‖² (Eq. 2)
// for every row of x.
func (ae *AE) ReconstructionErrors(x *mat.Matrix) ([]float64, error) {
	if x.Cols != ae.cfg.InputDim {
		return nil, fmt.Errorf("autoencoder: input dim %d, want %d", x.Cols, ae.cfg.InputDim)
	}
	// The network's own output buffer is read immediately, so no copy
	// is needed here.
	rec := ae.net.Forward(x)
	errs := make([]float64, x.Rows)
	parallel.ForEachChunkMin(x.Rows, 512, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			errs[i] = mat.SquaredDistance(x.Row(i), rec.Row(i))
		}
	})
	return errs, nil
}

// Encoder returns the latent representation of each row (the output of
// the bottleneck layer). Used by DeepSAD-style baselines that reuse a
// pretrained encoder. The result is caller-owned (a copy, not the
// network's workspace), so it survives later forward passes through
// the same autoencoder.
func (ae *AE) Encoder(x *mat.Matrix) (*mat.Matrix, error) {
	if x.Cols != ae.cfg.InputDim {
		return nil, fmt.Errorf("autoencoder: input dim %d, want %d", x.Cols, ae.cfg.InputDim)
	}
	// The encoder is the first half of the layer stack:
	// len(Hidden) Dense layers, each followed by an activation.
	out := x
	nEnc := 2 * len(ae.cfg.Hidden)
	for i := 0; i < nEnc && i < len(ae.net.Layers); i++ {
		out = ae.net.Layers[i].Forward(out)
	}
	return out.Clone(), nil
}

// MaxTrainRetries bounds the LR-halving/re-seed retries a cluster's
// autoencoder gets after a numerical failure before the failure is
// surfaced to the caller.
const MaxTrainRetries = 2

// ClusterResume threads checkpoint state through TrainPerCluster.
type ClusterResume struct {
	// Done holds pre-trained autoencoders by cluster index (nil
	// entries are trained from scratch with their own RNG stream, so a
	// resumed run is bitwise identical to an uninterrupted one).
	Done []*AE
	// Errs holds the matching per-cluster reconstruction errors.
	Errs [][]float64
	// OnCluster, when non-nil, is invoked (serialized) as each cluster
	// finishes training — the checkpoint writer hook. An error aborts
	// the run once in-flight clusters drain.
	OnCluster func(cluster int, ae *AE, errs []float64) error
}

// TrainPerCluster trains one autoencoder per cluster concurrently on
// the shared worker pool (Algorithm 1, lines 2–5). clusters[i] lists
// the unlabeled row indices of cluster i. It returns the trained
// autoencoders and S^Rec for every unlabeled row, computed by the AE
// of its own cluster.
//
// Each cluster's RNG stream is split from the parent serially, before
// any training starts, so every autoencoder sees the same stream
// regardless of worker count or scheduling — results are bitwise
// identical to a sequential run, and a cluster restored from a
// checkpoint (resume.Done) never perturbs its siblings' streams.
//
// A cluster whose training trips a numerical guard is retried up to
// MaxTrainRetries times with a halved learning rate and a re-split RNG
// stream; if every attempt fails, the *nn.NumericalError of the last
// attempt (annotated with the cluster index) is returned.
func TrainPerCluster(ctx context.Context, unlabeled, labeled *mat.Matrix, clusters [][]int, cfg Config, r *rng.RNG, resume *ClusterResume) ([]*AE, []float64, error) {
	k := len(clusters)
	if k == 0 {
		return nil, nil, errors.New("autoencoder: no clusters")
	}
	rngs := make([]*rng.RNG, k)
	for i := range rngs {
		rngs[i] = r.SplitN("ae", i)
	}
	aes := make([]*AE, k)
	errsByCluster := make([][]float64, k)
	firstErr := make([]error, k)
	var hookMu sync.Mutex
	var hookErr error
	parallel.Map(k, func(i int) {
		if resume != nil && i < len(resume.Done) && resume.Done[i] != nil {
			aes[i] = resume.Done[i]
			errsByCluster[i] = resume.Errs[i]
			return
		}
		if err := ctx.Err(); err != nil {
			firstErr[i] = fmt.Errorf("autoencoder: cluster %d canceled: %w", i, err)
			return
		}
		ae, es, err := trainOneCluster(ctx, unlabeled, labeled, clusters[i], cfg, rngs[i], i)
		if err != nil {
			firstErr[i] = err
			return
		}
		aes[i] = ae
		errsByCluster[i] = es
		if resume != nil && resume.OnCluster != nil {
			hookMu.Lock()
			if hookErr == nil {
				hookErr = resume.OnCluster(i, ae, es)
			}
			hookMu.Unlock()
		}
	})
	for _, err := range firstErr {
		if err != nil {
			return nil, nil, err
		}
	}
	if hookErr != nil {
		return nil, nil, hookErr
	}
	scores := make([]float64, unlabeled.Rows)
	for i, idxs := range clusters {
		for j, row := range idxs {
			scores[row] = errsByCluster[i][j]
		}
	}
	return aes, scores, nil
}

// trainOneCluster runs one cluster's build-train-score cycle with the
// bounded numerical-retry loop. Attempt 0 consumes the cluster's
// original RNG stream exactly as the pre-guard code did, so healthy
// runs are bitwise unchanged; retries derive fresh streams from the
// (deterministic) post-failure stream position.
func trainOneCluster(ctx context.Context, unlabeled, labeled *mat.Matrix, cluster []int, cfg Config, cr *rng.RNG, idx int) (*AE, []float64, error) {
	sub := nn.Gather(unlabeled, cluster)
	for attempt := 0; ; attempt++ {
		acfg := cfg
		acfg.LR = cfg.LR / float64(uint(1)<<uint(attempt))
		ae, err := New(acfg, cr)
		if err != nil {
			return nil, nil, err
		}
		_, err = ae.TrainCtx(ctx, sub, labeled, cr)
		var nerr *nn.NumericalError
		if errors.As(err, &nerr) {
			nerr.Cluster = idx
			nerr.Attempt = attempt
			if attempt < MaxTrainRetries {
				cr = cr.SplitN("retry", attempt+1)
				continue
			}
			return nil, nil, nerr
		}
		if err != nil {
			return nil, nil, err
		}
		es, err := ae.ReconstructionErrors(sub)
		if err != nil {
			return nil, nil, err
		}
		return ae, es, nil
	}
}

// ParamValues deep-copies the network's parameter payloads in layer
// order — the checkpoint representation of a trained autoencoder.
func (ae *AE) ParamValues() [][]float64 {
	ps := ae.net.Params()
	out := make([][]float64, len(ps))
	for i, p := range ps {
		out[i] = append([]float64(nil), p.Data...)
	}
	return out
}

// SetParamValues restores payloads captured by ParamValues into an
// identically configured autoencoder.
func (ae *AE) SetParamValues(vals [][]float64) error {
	ps := ae.net.Params()
	if len(ps) != len(vals) {
		return fmt.Errorf("autoencoder: restore: %d param tensors, saved %d", len(ps), len(vals))
	}
	for i, p := range ps {
		if len(p.Data) != len(vals[i]) {
			return fmt.Errorf("autoencoder: restore: param %d has %d values, saved %d", i, len(p.Data), len(vals[i]))
		}
		copy(p.Data, vals[i])
	}
	return nil
}
