package registry

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"targad/internal/fleet"
)

// TestE2ETwoTenantRouterParity is the acceptance end-to-end: two
// tenants with different models score concurrently through
// targad-router into one registry-backed replica, and every routed
// answer is bitwise-identical to offline core.Score on that tenant's
// model — while the two tenant models continuously evict each other
// (MaxHot admits only one of them beside the pinned default) and one
// of them is reloaded mid-stream. Run under -race by the ci smoke.
func TestE2ETwoTenantRouterParity(t *testing.T) {
	reg, fx := newTestRegistry(t, func(c *Config) { c.MaxHot = 2 })
	backend := httptest.NewServer(reg.Handler())
	defer backend.Close()

	router, err := fleet.New(fleet.Config{
		Backends:      []string{backend.URL},
		ProbeInterval: -1, // probes driven by hand below
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()
	router.ProbeAll()
	rts := httptest.NewServer(router.Handler())
	defer rts.Close()

	const perTenant = 25
	var wg sync.WaitGroup
	for _, tn := range []struct {
		tenant string
		want   []float64
	}{
		{"tenant-a", fx.alphaOffline},
		{"tenant-b", fx.betaOffline},
	} {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perTenant; i++ {
				status, body := scoreVia(t, rts.Client(), rts.URL, fx.rows, "", tn.tenant)
				if status != http.StatusOK {
					t.Errorf("%s iter %d: status %d: %s", tn.tenant, i, status, body)
					return
				}
				got := decodeScores(t, body)
				for j := range got {
					if got[j] != tn.want[j] {
						t.Errorf("%s iter %d row %d: routed score %v != offline %v", tn.tenant, i, j, got[j], tn.want[j])
						return
					}
				}
			}
		}()
	}

	// Mid-stream: reload one tenant model through the router, with the
	// ?model= query riding the forward.
	resp, err := rts.Client().Post(rts.URL+"/reload?model=alpha", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("routed /reload?model=alpha: status %d: %s", resp.StatusCode, body)
	}
	wg.Wait()

	// The hot set kept its bound through the churn, and churn happened.
	c := reg.Counters()
	if c.HotModels > 2 {
		t.Fatalf("counters %+v: hot set exceeded MaxHot", c)
	}
	if c.Evictions == 0 {
		t.Fatalf("counters %+v: two tenants over MaxHot=2 never evicted", c)
	}

	// Affinity surfacing: a fresh probe picks up the hot-model stamp
	// and /backends?tenant= names the tenant's home and its models.
	router.ProbeAll()
	bresp, err := rts.Client().Get(rts.URL + "/backends?tenant=tenant-a")
	if err != nil {
		t.Fatal(err)
	}
	braw, _ := io.ReadAll(bresp.Body)
	bresp.Body.Close()
	if !strings.Contains(string(braw), `"home_models"`) || !strings.Contains(string(braw), "base") {
		t.Fatalf("/backends?tenant=tenant-a = %s, want a home_models stamp naming the hot set", braw)
	}
}

// TestRoutedVsDirectModelQueryParity checks satellite routing fidelity
// for a model-qualified admin endpoint: GET /drift?model= answered
// through the router is byte-identical to the registry answering
// directly.
func TestRoutedVsDirectModelQueryParity(t *testing.T) {
	reg, fx := newTestRegistry(t, nil)
	backend := httptest.NewServer(reg.Handler())
	defer backend.Close()

	// Warm alpha and pin its drift response to a stable state.
	if status, body := scoreVia(t, backend.Client(), backend.URL, fx.rows, "alpha", ""); status != http.StatusOK {
		t.Fatalf("warm alpha: status %d: %s", status, body)
	}

	router, err := fleet.New(fleet.Config{
		Backends:      []string{backend.URL},
		ProbeInterval: -1,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()
	router.ProbeAll()
	rts := httptest.NewServer(router.Handler())
	defer rts.Close()

	get := func(base, path string) (int, string) {
		t.Helper()
		resp, err := rts.Client().Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(raw)
	}

	for _, path := range []string{"/drift?model=alpha", "/drift?model=base", "/retrain?model=alpha"} {
		directStatus, direct := get(backend.URL, path)
		routedStatus, routed := get(rts.URL, path)
		if routedStatus != directStatus || routed != direct {
			t.Fatalf("%s: routed (%d) %q != direct (%d) %q", path, routedStatus, routed, directStatus, direct)
		}
	}

	// The ?model= query genuinely reaches the registry: an unmanifested
	// name through the router is the registry's typed 404, not a router
	// error.
	status, body := get(rts.URL, "/drift?model=not-a-model")
	if status != http.StatusNotFound || !strings.Contains(body, "not-a-model") {
		t.Fatalf("routed /drift?model=not-a-model: status %d body %q, want the registry's typed 404", status, body)
	}
}
