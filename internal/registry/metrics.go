package registry

import (
	"fmt"
	"io"
	"net/http"

	"targad/internal/buildinfo"
	"targad/internal/serve"
)

// handleMetrics renders the registry-wide Prometheus exposition. The
// per-server /metrics writer cannot be reused here: exposition format
// requires each metric name to appear in exactly one HELP/TYPE group,
// so the registry snapshots every hot entry (serve.Stats) and renders
// one group per name with one {model="..."} line per model. Label
// values are hot-map keys — manifest-validated names, never raw
// request headers — so a scraping storm of bogus model names cannot
// explode series cardinality.
func (r *Registry) handleMetrics(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		r.writeJSONError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")

	names := r.Hot()
	hot := *r.hot.Load()
	stats := make([]serve.Stats, 0, len(names))
	models := make([]string, 0, len(names))
	for _, name := range names {
		e, ok := hot[name]
		if !ok {
			continue // evicted between Hot() and the map load
		}
		stats = append(stats, e.srv.Stats())
		models = append(models, name)
	}
	writeLabeled(w, models, stats)
	r.writeRegistryMetrics(w)

	fmt.Fprintf(w, "# HELP targad_build_info Build metadata; the value is always 1.\n# TYPE targad_build_info gauge\n")
	fmt.Fprintf(w, "targad_build_info{version=%q,revision=%q,go=%q} 1\n",
		buildinfo.Version(), buildinfo.Revision(), buildinfo.GoVersion())
}

// writeLabeled renders the per-model serving and monitoring series:
// one HELP/TYPE block per metric, one labeled sample per hot model.
func writeLabeled(w io.Writer, models []string, stats []serve.Stats) {
	counter := func(name, help string, pick func(serve.Stats) (float64, bool)) {
		writeGroup(w, name, help, "counter", models, stats, pick)
	}
	gauge := func(name, help string, pick func(serve.Stats) (float64, bool)) {
		writeGroup(w, name, help, "gauge", models, stats, pick)
	}
	all := func(f func(serve.Stats) float64) func(serve.Stats) (float64, bool) {
		return func(st serve.Stats) (float64, bool) { return f(st), true }
	}

	counter("targad_serve_requests_total", "Scoring requests accepted for processing.", all(func(st serve.Stats) float64 { return float64(st.Requests) }))
	counter("targad_serve_requests_ok_total", "Scoring requests answered successfully.", all(func(st serve.Stats) float64 { return float64(st.RequestOK) }))
	counter("targad_serve_request_errors_total", "Scoring requests that failed (shed excluded).", all(func(st serve.Stats) float64 { return float64(st.RequestErrs) }))
	counter("targad_serve_shed_total", "Scoring requests shed with 429 because the queue was full.", all(func(st serve.Stats) float64 { return float64(st.Shed) }))
	counter("targad_serve_binary_requests_total", "Scoring requests carried as binary wire frames.", all(func(st serve.Stats) float64 { return float64(st.BinaryReqs) }))
	counter("targad_serve_rows_total", "Instance rows scored.", all(func(st serve.Stats) float64 { return float64(st.Rows) }))
	counter("targad_serve_batches_total", "Inference passes run (micro-batches plus direct calls).", all(func(st serve.Stats) float64 { return float64(st.Batches) }))
	counter("targad_serve_reloads_total", "Successful model hot-reloads.", all(func(st serve.Stats) float64 { return float64(st.Reloads) }))
	counter("targad_serve_reload_errors_total", "Failed model hot-reload attempts.", all(func(st serve.Stats) float64 { return float64(st.ReloadErrs) }))
	gauge("targad_serve_in_flight", "Scoring requests currently in the handler.", all(func(st serve.Stats) float64 { return float64(st.InFlight) }))
	gauge("targad_serve_queue_depth", "Scoring jobs waiting in the batching queue.", all(func(st serve.Stats) float64 { return float64(st.QueueDepth) }))
	gauge("targad_serve_model_version", "Generation counter of the served model (bumped per reload).", all(func(st serve.Stats) float64 { return float64(st.ModelVersion) }))
	gauge("targad_serve_ready", "1 when a model is loaded and the server accepts requests.", all(func(st serve.Stats) float64 {
		if st.Ready {
			return 1
		}
		return 0
	}))
	gauge("targad_shadow_active", "1 while a shadow model is under evaluation.", all(func(st serve.Stats) float64 {
		if st.ShadowActive {
			return 1
		}
		return 0
	}))
	gauge("targad_feedback_records", "Distinct labeled rows in the verdict store.", func(st serve.Stats) (float64, bool) {
		if st.FeedbackRecords < 0 {
			return 0, false
		}
		return float64(st.FeedbackRecords), true
	})

	gauge("targad_monitor_enabled", "1 when drift monitoring is armed for the served model.", all(func(st serve.Stats) float64 {
		if st.Monitor != nil {
			return 1
		}
		return 0
	}))
	monGauge := func(name, help string, f func(serve.Stats) float64) {
		gauge(name, help, func(st serve.Stats) (float64, bool) {
			if st.Monitor == nil {
				return 0, false
			}
			return f(st), true
		})
	}
	monGauge("targad_monitor_status", "Drift status: 0 filling, 1 ok, 2 warn, 3 alarm.", func(st serve.Stats) float64 { return float64(st.Monitor.Status) })
	monGauge("targad_monitor_window_rows", "Rows in the sliding drift window.", func(st serve.Stats) float64 { return float64(st.Monitor.Rows) })
	monGauge("targad_monitor_max_feature_psi", "Worst per-feature PSI of the window vs the reference profile.", func(st serve.Stats) float64 { return st.Monitor.MaxPSI })
	monGauge("targad_monitor_max_feature_ks", "Worst per-feature binned KS statistic vs the reference profile.", func(st serve.Stats) float64 { return st.Monitor.MaxKS })
	monGauge("targad_monitor_score_psi", "PSI of the live S^tar score distribution vs the reference.", func(st serve.Stats) float64 { return st.Monitor.ScorePSI })
	monGauge("targad_monitor_score_ks", "Binned KS of the live S^tar score distribution vs the reference.", func(st serve.Stats) float64 { return st.Monitor.ScoreKS })
}

// writeGroup renders one metric's HELP/TYPE block and its labeled
// samples; pick returning false skips a model's line (the metric does
// not apply to it).
func writeGroup(w io.Writer, name, help, kind string, models []string, stats []serve.Stats, pick func(serve.Stats) (float64, bool)) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, kind)
	for i, model := range models {
		if v, ok := pick(stats[i]); ok {
			fmt.Fprintf(w, "%s{model=%q} %g\n", name, model, v)
		}
	}
}

// writeRegistryMetrics appends the registry's own lifecycle series.
func (r *Registry) writeRegistryMetrics(w io.Writer) {
	c := r.Counters()
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge("targad_registry_models", "Models listed in the manifest.", int64(c.Models))
	gauge("targad_registry_hot_models", "Models currently loaded.", int64(c.HotModels))
	gauge("targad_registry_max_hot", "Bound on simultaneously loaded models.", int64(c.MaxHot))
	counter("targad_registry_loads_total", "Cold-model loads completed.", c.Loads)
	counter("targad_registry_load_errors_total", "Cold-model loads that failed.", c.LoadErrs)
	counter("targad_registry_evictions_total", "Models evicted from the hot set (LRU).", c.Evictions)
	counter("targad_registry_singleflight_waits_total", "Requests that waited on another request's cold load.", c.SingleflightWaits)
}
