package registry

import (
	"errors"
	"fmt"
	"maps"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"targad/internal/activelearn"
	"targad/internal/dataset"
	"targad/internal/faultinject"
	"targad/internal/feedback"
	"targad/internal/retrain"
	"targad/internal/serve"
)

// UnknownModelError reports a request that named a model the manifest
// does not list. It maps to HTTP 404 and — deliberately — is raised
// before the name can reach any metric label or directory path.
type UnknownModelError struct{ Name string }

func (e *UnknownModelError) Error() string {
	return fmt.Sprintf("registry: unknown model %q (not in manifest)", e.Name)
}

// ErrClosed is returned once the registry has shut down.
var ErrClosed = errors.New("registry: closed")

// Config tunes one registry host.
type Config struct {
	// Dir is the model directory holding manifest.json.
	Dir string
	// MaxHot bounds how many models are loaded at once, the pinned
	// default included (minimum 1, default 4). A cold load past the
	// bound evicts the least-recently-used unpinned entry; when every
	// other entry is pinned or mid-load the set temporarily overshoots
	// rather than failing the request.
	MaxHot int

	// Base is the serving configuration template every entry starts
	// from; per-entry fields (ModelPath, Strategy, Precision, Feedback,
	// Acquire, InstanceID suffixing) are filled per model. Base.Monitor,
	// queue/batch tuning, and body limits apply to every model.
	Base serve.Config

	// FeedbackRoot, when set, gives each model its own verdict store at
	// FeedbackRoot/<model-name> and mounts its /feedback endpoints.
	FeedbackRoot string
	// AcquireBudget, when positive, arms a per-model acquisition queue.
	AcquireBudget int
	// FeedbackTTL is handed to each entry's retrain configuration:
	// verdicts older than it decay out of retraining (0 keeps forever).
	FeedbackTTL time.Duration

	// Retrain, when set, is the retrain template for models whose spec
	// carries RetrainLabeled/RetrainUnlabeled: Store, Train, FitSlot,
	// FeedbackTTL, and SavePath are filled per entry; everything else
	// (Fit, Seed, gate bounds, timeouts) is taken from the template.
	// All entries share one fit slot, so concurrent drift alarms
	// serialize their expensive Fits instead of forking N of them.
	Retrain *retrain.Config

	// Logf receives one line per lifecycle event. Nil discards.
	Logf func(format string, v ...any)
}

// entry is one hot model: a full single-model serving stack plus the
// registry's bookkeeping.
type entry struct {
	name string
	spec ModelSpec

	srv   *serve.Server
	store *feedback.Store       // nil: no per-model feedback
	orch  *retrain.Orchestrator // nil: no per-model retrain

	pinned   bool         // the default entry; never evicted
	lastUsed atomic.Int64 // registry clock tick of the last acquire
	refs     atomic.Int64 // in-flight requests pinned to this entry
	closed   atomic.Bool  // set when evicted; pinners must back off
}

// close tears the entry's stack down in dependency order. Called only
// after the entry left the hot map and its refs drained.
func (e *entry) close() {
	if e.orch != nil {
		e.orch.Close()
	}
	e.srv.Close()
	if e.store != nil {
		e.store.Close()
	}
}

// flight is one in-progress cold load other requests for the same
// model wait on.
type flight struct {
	done chan struct{}
	e    *entry
	err  error
}

// Registry is the multi-model host. Create with New, mount Handler,
// Close on shutdown.
type Registry struct {
	cfg Config
	man *Manifest
	def *entry

	// hot is the lock-free read path: an immutable name→entry map
	// republished copy-on-write under mu on every load and evict.
	hot   atomic.Pointer[map[string]*entry]
	clock atomic.Int64

	mu      sync.Mutex
	flights map[string]*flight
	closed  bool

	fitSlot chan struct{}
	evictWG sync.WaitGroup

	loads    atomic.Int64
	loadErrs atomic.Int64
	evicts   atomic.Int64
	sfWaits  atomic.Int64
}

// New loads the manifest in cfg.Dir, eagerly loads the default model
// (a host that cannot serve its default should fail at startup, not on
// the first request), and returns the registry.
func New(cfg Config) (*Registry, error) {
	if cfg.MaxHot <= 0 {
		cfg.MaxHot = 4
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	man, err := LoadManifest(cfg.Dir)
	if err != nil {
		return nil, err
	}
	r := &Registry{
		cfg:     cfg,
		man:     man,
		flights: map[string]*flight{},
		fitSlot: make(chan struct{}, 1),
	}
	def, err := r.buildEntry(man.Default, man.Models[man.Default])
	if err != nil {
		return nil, fmt.Errorf("registry: loading default model %q: %w", man.Default, err)
	}
	def.pinned = true
	r.def = def
	m := map[string]*entry{def.name: def}
	r.hot.Store(&m)
	r.loads.Add(1)
	cfg.Logf("registry: %d models manifested in %s, default %q hot (max hot %d)",
		len(man.Models), cfg.Dir, man.Default, cfg.MaxHot)
	return r, nil
}

// DefaultModel returns the manifest's default model name.
func (r *Registry) DefaultModel() string { return r.man.Default }

// tenantModel resolves a tenant ID to its model name; tenants the
// manifest does not list are served the default. The tenant map is
// immutable after New, so the lookup is lock-free.
func (r *Registry) tenantModel(tenant string) string {
	if name, ok := r.man.Tenants[tenant]; ok {
		return name
	}
	return r.man.Default
}

// acquire pins the named model's entry hot and returns it with a
// release func. Cold models load on the spot (single-flighted); a
// concurrently evicted entry is detected by the closed flag and the
// lookup retried, so a returned entry's server is guaranteed live for
// the duration of the pin.
func (r *Registry) acquire(name string) (*entry, func(), error) {
	for {
		e, ok := (*r.hot.Load())[name]
		if !ok {
			var err error
			e, err = r.load(name)
			if err != nil {
				return nil, nil, err
			}
		}
		e.refs.Add(1)
		if e.closed.Load() {
			// Lost the race with an eviction: this pin no longer keeps
			// the entry alive (the drain may already have passed), so
			// back off and reload. The stale pin is harmless — the
			// drainer only needs refs taken BEFORE closed was set to
			// reach zero, and those all release through this same path.
			e.refs.Add(-1)
			continue
		}
		e.lastUsed.Store(r.clock.Add(1))
		return e, func() { e.refs.Add(-1) }, nil
	}
}

// load brings a cold model hot, single-flighting concurrent requests
// for the same name: one builds, the rest wait on its flight.
func (r *Registry) load(name string) (*entry, error) {
	spec, ok := r.man.Models[name]
	if !ok {
		return nil, &UnknownModelError{Name: name}
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, ErrClosed
	}
	if e, ok := (*r.hot.Load())[name]; ok { // published while we queued on mu
		r.mu.Unlock()
		return e, nil
	}
	if f, inflight := r.flights[name]; inflight {
		r.mu.Unlock()
		r.sfWaits.Add(1)
		<-f.done
		return f.e, f.err
	}
	f := &flight{done: make(chan struct{})}
	r.flights[name] = f
	r.mu.Unlock()

	e, err := r.buildEntry(name, spec)

	r.mu.Lock()
	delete(r.flights, name)
	if err != nil {
		r.loadErrs.Add(1)
		f.err = err
	} else if r.closed {
		f.err = ErrClosed
		r.mu.Unlock()
		close(f.done)
		e.close()
		return nil, f.err
	} else {
		r.loads.Add(1)
		f.e = e
		e.lastUsed.Store(r.clock.Add(1))
		r.publishLocked(e)
	}
	r.mu.Unlock()
	close(f.done)
	return f.e, f.err
}

// publishLocked inserts e into the hot map and evicts past MaxHot.
// Callers hold mu. The eviction ordering is the safety argument
// (DESIGN.md §15): the shrunken map is published FIRST, so no new
// request can find the victim; only then is the victim marked closed
// and its drain started, so every ref taken from the old map either
// finishes normally or backs off on the closed flag.
func (r *Registry) publishLocked(e *entry) {
	next := maps.Clone(*r.hot.Load())
	next[e.name] = e
	var victims []*entry
	for len(next) > r.cfg.MaxHot {
		victim := r.pickVictimLocked(next, e)
		if victim == nil {
			break // everything else pinned or just inserted: overshoot rather than fail
		}
		delete(next, victim.name)
		victims = append(victims, victim)
	}
	r.hot.Store(&next)
	for _, victim := range victims {
		r.retireLocked(victim)
	}
}

// pickVictimLocked returns the least-recently-used evictable entry of
// m: not pinned, and not the entry just inserted.
func (r *Registry) pickVictimLocked(m map[string]*entry, just *entry) *entry {
	var victim *entry
	for _, e := range m {
		if e.pinned || e == just {
			continue
		}
		if victim == nil || e.lastUsed.Load() < victim.lastUsed.Load() {
			victim = e
		}
	}
	return victim
}

// retireLocked marks an unpublished victim closed and drains it in the
// background: once every request pinned before the flag observes it
// released, the entry's stack closes. In-flight batches finish on the
// model they started with — eviction never fails a request.
func (r *Registry) retireLocked(victim *entry) {
	victim.closed.Store(true)
	r.evicts.Add(1)
	r.cfg.Logf("registry: evicting model %q (LRU)", victim.name)
	r.evictWG.Add(1)
	go func() {
		defer r.evictWG.Done()
		for victim.refs.Load() != 0 {
			time.Sleep(time.Millisecond)
		}
		victim.close()
		r.cfg.Logf("registry: model %q drained and closed", victim.name)
	}()
}

// buildEntry constructs one model's full serving stack from the
// manifest spec and the host template. It runs outside the registry
// lock — a slow model load never blocks other tenants.
func (r *Registry) buildEntry(name string, spec ModelSpec) (*entry, error) {
	if faultinject.Fire(faultinject.RegistryLoadFail) {
		return nil, fmt.Errorf("registry: load of model %q failed (injected)", name)
	}
	scfg := r.cfg.Base
	scfg.ModelPath = spec.Path
	if spec.hasStrat {
		scfg.Strategy = spec.strat
	}
	if spec.hasPrecision {
		scfg.Precision = spec.precision
	}
	if scfg.InstanceID != "" {
		scfg.InstanceID = scfg.InstanceID + "/" + name
	}
	if r.cfg.Logf != nil {
		logf := r.cfg.Logf
		scfg.Logf = func(format string, v ...any) { logf("model %s: "+format, append([]any{name}, v...)...) }
	}

	e := &entry{name: name, spec: spec}
	if r.cfg.FeedbackRoot != "" {
		store, err := feedback.Open(filepath.Join(r.cfg.FeedbackRoot, name), feedback.Config{})
		if err != nil {
			return nil, fmt.Errorf("registry: model %q: feedback store: %w", name, err)
		}
		e.store = store
		scfg.Feedback = store
		if r.cfg.AcquireBudget > 0 {
			scfg.Acquire = activelearn.New(activelearn.Config{Budget: r.cfg.AcquireBudget, Labeled: store.Has})
		}
	}

	srv, err := serve.New(scfg)
	if err != nil {
		if e.store != nil {
			e.store.Close()
		}
		return nil, fmt.Errorf("registry: model %q: %w", name, err)
	}
	e.srv = srv

	if r.cfg.Retrain != nil && e.store != nil && spec.RetrainLabeled != "" && spec.RetrainUnlabeled != "" {
		rc := *r.cfg.Retrain
		rc.Store = e.store
		labeled, unlabeled, header := spec.RetrainLabeled, spec.RetrainUnlabeled, spec.RetrainCSVHeader
		rc.Train = func() (*dataset.TrainSet, error) { return dataset.LoadTrainCSVs(labeled, unlabeled, header) }
		rc.FitSlot = r.fitSlot
		rc.FeedbackTTL = r.cfg.FeedbackTTL
		rc.SavePath = spec.Path // a reload (or restart) serves the promoted model
		orch, err := retrain.New(srv, rc)
		if err != nil {
			srv.Close()
			e.store.Close()
			return nil, fmt.Errorf("registry: model %q: retrain: %w", name, err)
		}
		e.orch = orch
		srv.SetRetrain(orch)
	}
	return e, nil
}

// Hot returns the currently hot model names, sorted.
func (r *Registry) Hot() []string {
	m := *r.hot.Load()
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// ReloadHot re-reads every hot model's file (the registry's SIGHUP
// behavior). Each entry reloads independently; the first error is
// returned but the sweep continues.
func (r *Registry) ReloadHot() error {
	var first error
	for _, name := range r.Hot() {
		e, release, err := r.acquire(name)
		if err != nil {
			if first == nil {
				first = err
			}
			continue
		}
		if _, err := e.srv.Reload(); err != nil && first == nil {
			first = fmt.Errorf("model %s: %w", name, err)
		}
		release()
	}
	return first
}

// Counters is the registry's own observability snapshot.
type Counters struct {
	Models, HotModels, MaxHot                     int
	Loads, LoadErrs, Evictions, SingleflightWaits int64
}

// Counters snapshots the registry's lifecycle counters.
func (r *Registry) Counters() Counters {
	return Counters{
		Models:            len(r.man.Models),
		HotModels:         len(*r.hot.Load()),
		MaxHot:            r.cfg.MaxHot,
		Loads:             r.loads.Load(),
		LoadErrs:          r.loadErrs.Load(),
		Evictions:         r.evicts.Load(),
		SingleflightWaits: r.sfWaits.Load(),
	}
}

// Close shuts the registry down: no new loads, every hot entry drained
// and closed, pending evictions joined.
func (r *Registry) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	old := *r.hot.Load()
	empty := map[string]*entry{}
	r.hot.Store(&empty)
	for _, e := range old {
		e.closed.Store(true)
	}
	flights := make([]*flight, 0, len(r.flights))
	for _, f := range r.flights {
		flights = append(flights, f)
	}
	r.mu.Unlock()

	for _, f := range flights {
		<-f.done
	}
	for _, e := range old {
		for e.refs.Load() != 0 {
			time.Sleep(time.Millisecond)
		}
		e.close()
	}
	r.evictWG.Wait()
}
