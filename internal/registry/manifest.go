// Package registry turns one targad-serve process into a multi-model
// host: a manifest maps model names (and tenant IDs) to saved model
// files, a bounded hot set keeps at most MaxHot of them loaded, and
// each loaded model owns the full single-model serving stack — its own
// micro-batcher, atomic model snapshot, drift window, feedback store,
// and retrain slot — so tenants never share mutable state.
//
// The request contract (DESIGN.md §15):
//
//   - /score routes on the X-Targad-Model header (must name a
//     manifested model), else the X-Targad-Tenant header (unknown
//     tenants fall through to the default model), else the default.
//     The default path bypasses the registry entirely — one pointer
//     dereference, zero extra allocations over a single-model server.
//   - Admin endpoints (/reload, /drift, /retrain, /feedback, ...)
//     resolve the model from the ?model= query first, then the tenant
//     header, then the default, and delegate to that entry's handler.
//   - A cold model loads lazily on first use, single-flighted; past
//     MaxHot the least-recently-used unpinned entry is evicted, after
//     every in-flight batch on it drains.
//
// Unmanifested model names are rejected with a typed 404 before any
// metric label or map entry is minted from them: Prometheus label
// values only ever come from manifest-validated names.
package registry

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"

	"targad/internal/core"
	"targad/internal/serve"
)

// ManifestFile is the file name LoadManifest reads inside the model
// directory.
const ManifestFile = "manifest.json"

// nameRE bounds model names: they become Prometheus label values, URL
// query values, and feedback-store directory names, so the charset is
// conservative and the length capped.
var nameRE = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$`)

// ValidName reports whether name is an acceptable model name.
func ValidName(name string) bool { return nameRE.MatchString(name) }

// ModelSpec is one manifest entry: where the model lives and its
// per-model serving overrides.
type ModelSpec struct {
	// Path is the saved model file (core.Model.Save), relative paths
	// resolve against the manifest directory.
	Path string `json:"path"`
	// Strategy optionally overrides the host's default identification
	// strategy for this model (MSP, ES, ED).
	Strategy string `json:"strategy,omitempty"`
	// Precision optionally overrides the inference precision for this
	// model (f64, f32).
	Precision string `json:"precision,omitempty"`

	// RetrainLabeled / RetrainUnlabeled are this model's base training
	// CSVs (the targad CLI layout); both set arms the per-model retrain
	// cycle when the host configures retraining.
	RetrainLabeled   string `json:"retrain_labeled,omitempty"`
	RetrainUnlabeled string `json:"retrain_unlabeled,omitempty"`
	// RetrainCSVHeader marks the retraining CSVs as carrying a header
	// row.
	RetrainCSVHeader bool `json:"retrain_csv_header,omitempty"`

	// strategy/precision pre-parsed by LoadManifest so a bad enum fails
	// at startup, not on the first cold load.
	strat        core.OODStrategy
	hasStrat     bool
	precision    serve.Precision
	hasPrecision bool
}

// Manifest is the model directory's manifest.json.
type Manifest struct {
	// Default names the model served when no header or query selects
	// one. Required; the default entry is pinned hot for the process
	// lifetime.
	Default string `json:"default"`
	// Models maps model names to their specs.
	Models map[string]ModelSpec `json:"models"`
	// Tenants maps tenant IDs (X-Targad-Tenant values) to model names.
	// Tenants not listed here are served the default model.
	Tenants map[string]string `json:"tenants,omitempty"`
}

// Names returns the manifested model names, sorted.
func (m *Manifest) Names() []string {
	names := make([]string, 0, len(m.Models))
	for name := range m.Models {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// LoadManifest reads and validates dir/manifest.json: every model name
// well-formed, every path non-empty (resolved against dir), enums
// parseable, the default present, and every tenant mapped to a
// manifested model.
func LoadManifest(dir string) (*Manifest, error) {
	path := filepath.Join(dir, ManifestFile)
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("registry: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("registry: %s: %w", path, err)
	}
	if len(m.Models) == 0 {
		return nil, fmt.Errorf("registry: %s: manifest lists no models", path)
	}
	if m.Default == "" {
		return nil, fmt.Errorf("registry: %s: manifest names no default model", path)
	}
	for name, spec := range m.Models {
		if !ValidName(name) {
			return nil, fmt.Errorf("registry: %s: invalid model name %q (want %s)", path, name, nameRE)
		}
		if spec.Path == "" {
			return nil, fmt.Errorf("registry: %s: model %q has no path", path, name)
		}
		if !filepath.IsAbs(spec.Path) {
			spec.Path = filepath.Join(dir, spec.Path)
		}
		if spec.RetrainLabeled != "" && !filepath.IsAbs(spec.RetrainLabeled) {
			spec.RetrainLabeled = filepath.Join(dir, spec.RetrainLabeled)
		}
		if spec.RetrainUnlabeled != "" && !filepath.IsAbs(spec.RetrainUnlabeled) {
			spec.RetrainUnlabeled = filepath.Join(dir, spec.RetrainUnlabeled)
		}
		if spec.Strategy != "" {
			st, ok := serve.ParseStrategy(spec.Strategy)
			if !ok {
				return nil, fmt.Errorf("registry: %s: model %q: unknown strategy %q (want MSP, ES, or ED)", path, name, spec.Strategy)
			}
			spec.strat, spec.hasStrat = st, true
		}
		if spec.Precision != "" {
			p, ok := serve.ParsePrecision(spec.Precision)
			if !ok {
				return nil, fmt.Errorf("registry: %s: model %q: unknown precision %q (want f64 or f32)", path, name, spec.Precision)
			}
			spec.precision, spec.hasPrecision = p, true
		}
		m.Models[name] = spec
	}
	if _, ok := m.Models[m.Default]; !ok {
		return nil, fmt.Errorf("registry: %s: default model %q is not manifested", path, m.Default)
	}
	for tenant, model := range m.Tenants {
		if tenant == "" {
			return nil, fmt.Errorf("registry: %s: empty tenant ID", path)
		}
		if _, ok := m.Models[model]; !ok {
			return nil, fmt.Errorf("registry: %s: tenant %q maps to unmanifested model %q", path, tenant, model)
		}
	}
	return &m, nil
}
