package registry

import (
	"encoding/json"
	"net/http"
	"strings"

	"targad/internal/wire"
)

// Request headers the registry routes on.
const (
	// HeaderModel names the model a /score request wants; it must be
	// manifested or the request is rejected with 404.
	HeaderModel = "X-Targad-Model"
	// HeaderTenant carries the caller's tenant ID; unknown tenants are
	// served the default model.
	HeaderTenant = "X-Targad-Tenant"
	// HeaderHotModels is stamped on /healthz and /readyz: the
	// comma-separated hot model names, read by fleet probers for
	// affinity routing.
	HeaderHotModels = "X-Targad-Models"
)

// Handler returns the registry's HTTP routes. It is a hand-rolled path
// switch, not a ServeMux: the default-model /score path must add zero
// allocations over a single-model server, and a mux match is neither
// free nor necessary for a flat route table.
func (r *Registry) Handler() http.Handler { return handler{r} }

type handler struct{ r *Registry }

func (h handler) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	r := h.r
	switch req.URL.Path {
	case "/score":
		name := req.Header.Get(HeaderModel)
		if name == "" {
			if tenant := req.Header.Get(HeaderTenant); tenant != "" {
				name = r.tenantModel(tenant)
			}
		}
		if name == "" || name == r.def.name {
			// The tenantless (and default-tenant) fast path: one pointer
			// dereference on top of the single-model server, no map
			// load, no refcount. The default entry is pinned for the
			// process lifetime, so no pin is needed to keep it alive.
			r.def.srv.HandleScore(w, req)
			return
		}
		e, release, err := r.acquire(name)
		if err != nil {
			r.writeError(w, req, err)
			return
		}
		e.srv.HandleScore(w, req)
		release()
	case "/models":
		r.handleModels(w, req)
	case "/metrics":
		r.handleMetrics(w, req)
	case "/healthz", "/readyz":
		// Health belongs to the host, identity to the default entry;
		// the hot-model stamp rides along for fleet affinity probing.
		w.Header().Set(HeaderHotModels, strings.Join(r.Hot(), ","))
		r.def.srv.Handler().ServeHTTP(w, req)
	default:
		// Admin endpoints (/reload, /drift, /retrain, /feedback, ...)
		// resolve their model from the query first — `curl
		// /drift?model=acme-v2` beats header plumbing for operators —
		// then the tenant header, then the default.
		name := req.URL.Query().Get("model")
		if name == "" {
			name = req.Header.Get(HeaderModel)
		}
		if name == "" {
			if tenant := req.Header.Get(HeaderTenant); tenant != "" {
				name = r.tenantModel(tenant)
			}
		}
		if name == "" || name == r.def.name {
			r.def.srv.Handler().ServeHTTP(w, req)
			return
		}
		e, release, err := r.acquire(name)
		if err != nil {
			r.writeError(w, req, err)
			return
		}
		e.srv.Handler().ServeHTTP(w, req)
		release()
	}
}

// handleModels answers GET /models: the manifest's view plus what is
// currently hot.
func (r *Registry) handleModels(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		r.writeJSONError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	c := r.Counters()
	writeJSON(w, http.StatusOK, map[string]any{
		"default": r.man.Default,
		"models":  r.man.Names(),
		"hot":     r.Hot(),
		"max_hot": c.MaxHot,
		"tenants": len(r.man.Tenants),
	})
}

// writeError maps registry errors onto the request's wire format: an
// UnknownModelError is a 404, a closed registry a 503, anything else a
// 500; binary-frame requests get a binary error frame so their clients
// never have to parse JSON.
func (r *Registry) writeError(w http.ResponseWriter, req *http.Request, err error) {
	status := http.StatusInternalServerError
	switch {
	case isUnknownModel(err):
		status = http.StatusNotFound
	case err == ErrClosed:
		status = http.StatusServiceUnavailable
	}
	if strings.HasPrefix(req.Header.Get("Content-Type"), wire.ContentType) {
		frame := wire.AppendError(nil, status, err.Error())
		w.Header().Set("Content-Type", wire.ContentType)
		w.WriteHeader(status)
		_, _ = w.Write(frame)
		return
	}
	r.writeJSONError(w, status, err.Error())
}

func isUnknownModel(err error) bool {
	_, ok := err.(*UnknownModelError)
	return ok
}

func (r *Registry) writeJSONError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
