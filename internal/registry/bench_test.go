package registry

import (
	"io"
	"net/http"
	"testing"

	"targad/internal/core"
	"targad/internal/wire"
)

// replayBody is a resettable request body so one http.Request serves
// every iteration without per-op reader allocations (mirrors the
// serve package's benchmark harness).
type replayBody struct {
	data []byte
	off  int
}

func (r *replayBody) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, io.EOF
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}

func (r *replayBody) Close() error { return nil }

// nullResponseWriter swallows the response, reusing one header map.
type nullResponseWriter struct {
	h      http.Header
	status int
}

func (w *nullResponseWriter) Header() http.Header         { return w.h }
func (w *nullResponseWriter) Write(b []byte) (int, error) { return len(b), nil }
func (w *nullResponseWriter) WriteHeader(status int)      { w.status = status }

// BenchmarkRegistryScoreBinary is the multi-model twin of the serve
// package's BenchmarkServeScoreBinary: the binary serving path through
// the registry handler on the tenantless default route. The ci.sh gate
// holds it to the same <=9 allocs/op budget — the registry's fast path
// must add ZERO allocations over the single-model server.
func BenchmarkRegistryScoreBinary(b *testing.B) {
	frame, err := wire.AppendRequestF64(nil, defaultRows(4, 123), int(core.ED), false)
	if err != nil {
		b.Fatal(err)
	}
	r, _ := newTestRegistry(b, nil)
	h := r.Handler()

	body := &replayBody{data: frame}
	req, err := http.NewRequest(http.MethodPost, "/score", body)
	if err != nil {
		b.Fatal(err)
	}
	req.Header.Set("Content-Type", wire.ContentType)
	req.ContentLength = int64(len(frame))
	w := &nullResponseWriter{h: make(http.Header)}

	// Warm the arenas so the steady state is what gets measured.
	for i := 0; i < 16; i++ {
		body.off = 0
		h.ServeHTTP(w, req)
	}
	if w.status != http.StatusOK {
		b.Fatalf("status %d", w.status)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body.off = 0
		h.ServeHTTP(w, req)
	}
	if w.status != http.StatusOK {
		b.Fatalf("status %d", w.status)
	}
}

// BenchmarkRegistryScoreBinaryHot measures the same workload on a
// non-default hot model — the acquire/pin/release path the tenant
// routes pay. The delta against BenchmarkRegistryScoreBinary is the
// registry's per-request overhead for non-default models.
func BenchmarkRegistryScoreBinaryHot(b *testing.B) {
	fx := tenantModels(b)
	frame, err := wire.AppendRequestF64(nil, fx.rows, int(core.ED), false)
	if err != nil {
		b.Fatal(err)
	}
	r, _ := newTestRegistry(b, nil)
	h := r.Handler()

	body := &replayBody{data: frame}
	req, err := http.NewRequest(http.MethodPost, "/score", body)
	if err != nil {
		b.Fatal(err)
	}
	req.Header.Set("Content-Type", wire.ContentType)
	req.ContentLength = int64(len(frame))
	req.Header.Set(HeaderModel, "alpha")
	w := &nullResponseWriter{h: make(http.Header)}

	for i := 0; i < 16; i++ {
		body.off = 0
		h.ServeHTTP(w, req)
	}
	if w.status != http.StatusOK {
		b.Fatalf("status %d", w.status)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body.off = 0
		h.ServeHTTP(w, req)
	}
	if w.status != http.StatusOK {
		b.Fatalf("status %d", w.status)
	}
}
