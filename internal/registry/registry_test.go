package registry

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"targad/internal/core"
	"targad/internal/dataset/synth"
	"targad/internal/faultinject"
	"targad/internal/mat"
	"targad/internal/rng"
	"targad/internal/serve"
	"targad/internal/wire"
)

// fixturePath is the committed format-v1 model (32 features); it backs
// the default entry so registry tests stay training-free on the
// default path.
const fixturePath = "../core/testdata/model_v1.gob"

const fixtureDim = 32

// quickCfg mirrors the retrain package's fast-fit configuration for
// the tenant models that must genuinely differ from each other.
func quickCfg() core.Config {
	cfg := core.DefaultConfig()
	cfg.K = 2
	cfg.AEEpochs = 2
	cfg.AELR = 1e-3
	cfg.ClfEpochs = 8
	cfg.ClfLR = 1e-3
	cfg.ClfHidden = []int{16}
	cfg.AEHidden = []int{12, 6}
	return cfg
}

// tenantFixtures are two distinct trained models (different fit seeds
// on the same synthetic bundle) plus rows in their feature space,
// built once per test binary.
type tenantFixtures struct {
	dir          string // holds alpha.gob and beta.gob
	alpha, beta  string // model file paths
	rows         [][]float64
	alphaOffline []float64 // offline Score over rows, per model
	betaOffline  []float64
}

var (
	tfOnce sync.Once
	tfErr  error
	tf     tenantFixtures
)

// tenantModels fits (once) and returns the two tenant model fixtures.
func tenantModels(t testing.TB) tenantFixtures {
	t.Helper()
	tfOnce.Do(func() {
		dir, err := os.MkdirTemp("", "targad-registry-models")
		if err != nil {
			tfErr = err
			return
		}
		b, err := synth.Generate(synth.KDDCUP99(), synth.Options{
			Scale:          0.03,
			Seed:           7,
			LabeledPerType: 20,
		})
		if err != nil {
			tfErr = err
			return
		}
		rows := make([][]float64, 6)
		for i := range rows {
			rows[i] = append([]float64(nil), b.Train.Unlabeled.Row(i)...)
		}
		x := mat.New(len(rows), len(rows[0]))
		for i, row := range rows {
			copy(x.Row(i), row)
		}
		tf = tenantFixtures{
			dir:   dir,
			alpha: filepath.Join(dir, "alpha.gob"),
			beta:  filepath.Join(dir, "beta.gob"),
			rows:  rows,
		}
		for _, fx := range []struct {
			seed    int64
			path    string
			offline *[]float64
		}{
			{11, tf.alpha, &tf.alphaOffline},
			{22, tf.beta, &tf.betaOffline},
		} {
			m := core.New(quickCfg(), fx.seed)
			if tfErr = m.Fit(context.Background(), b.Train); tfErr != nil {
				return
			}
			f, err := os.Create(fx.path)
			if err != nil {
				tfErr = err
				return
			}
			if tfErr = m.Save(f); tfErr != nil {
				f.Close()
				return
			}
			if tfErr = f.Close(); tfErr != nil {
				return
			}
			if *fx.offline, tfErr = m.Score(context.Background(), x); tfErr != nil {
				return
			}
		}
		if len(tf.alphaOffline) == len(tf.betaOffline) {
			same := true
			for i := range tf.alphaOffline {
				if tf.alphaOffline[i] != tf.betaOffline[i] {
					same = false
					break
				}
			}
			if same {
				tfErr = errors.New("tenant fixtures scored identically; seeds must differ")
			}
		}
	})
	if tfErr != nil {
		t.Fatalf("tenant model fixtures: %v", tfErr)
	}
	return tf
}

// writeManifest marshals m into dir/manifest.json.
func writeManifest(t testing.TB, dir string, m Manifest) {
	t.Helper()
	raw, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, ManifestFile), raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

// absFixture resolves the committed fixture to an absolute path so
// manifests in temp dirs can reference it.
func absFixture(t testing.TB) string {
	t.Helper()
	p, err := filepath.Abs(fixturePath)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// newTestRegistry stands a registry up over a manifest with the
// committed fixture as default plus the two tenant models, and
// registers cleanup. mut may adjust the config before New.
func newTestRegistry(t testing.TB, mut func(*Config)) (*Registry, tenantFixtures) {
	t.Helper()
	fx := tenantModels(t)
	dir := t.TempDir()
	writeManifest(t, dir, Manifest{
		Default: "base",
		Models: map[string]ModelSpec{
			"base":  {Path: absFixture(t)},
			"alpha": {Path: fx.alpha},
			"beta":  {Path: fx.beta},
		},
		Tenants: map[string]string{
			"tenant-a": "alpha",
			"tenant-b": "beta",
		},
	})
	cfg := Config{
		Dir:  dir,
		Base: serve.Config{MaxBatch: 1, Strategy: core.ED},
		Logf: t.Logf,
	}
	if mut != nil {
		mut(&cfg)
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return r, fx
}

// defaultRows builds deterministic rows in the default fixture's
// feature space.
func defaultRows(n int, seed int64) [][]float64 {
	r := rng.New(seed)
	out := make([][]float64, n)
	for i := range out {
		row := make([]float64, fixtureDim)
		for j := range row {
			row[j] = r.Float64()
		}
		out[i] = row
	}
	return out
}

// scoreVia posts a JSON score request with optional model/tenant
// headers and returns status, body.
func scoreVia(t testing.TB, client *http.Client, url string, rows [][]float64, model, tenant string) (int, []byte) {
	t.Helper()
	raw, err := json.Marshal(map[string]any{"instances": rows})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url+"/score", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if model != "" {
		req.Header.Set(HeaderModel, model)
	}
	if tenant != "" {
		req.Header.Set(HeaderTenant, tenant)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func decodeScores(t testing.TB, body []byte) []float64 {
	t.Helper()
	var out struct {
		Scores []float64 `json:"scores"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("decode scores: %v (%s)", err, body)
	}
	return out.Scores
}

// requireScores compares served JSON scores to the offline reference
// with == (float64 JSON round-trips bitwise).
func requireScores(t testing.TB, body []byte, want []float64) {
	t.Helper()
	got := decodeScores(t, body)
	if len(got) != len(want) {
		t.Fatalf("got %d scores, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("row %d: served score %v != offline %v", i, got[i], want[i])
		}
	}
}

func TestLoadManifestValidation(t *testing.T) {
	model := absFixture(t)
	cases := []struct {
		name string
		m    Manifest
		want string
	}{
		{"no-models", Manifest{Default: "a"}, "no models"},
		{"no-default", Manifest{Models: map[string]ModelSpec{"a": {Path: model}}}, "no default"},
		{"bad-name", Manifest{Default: "a", Models: map[string]ModelSpec{"a": {Path: model}, "../evil": {Path: model}}}, "invalid model name"},
		{"no-path", Manifest{Default: "a", Models: map[string]ModelSpec{"a": {}}}, "no path"},
		{"bad-strategy", Manifest{Default: "a", Models: map[string]ModelSpec{"a": {Path: model, Strategy: "??"}}}, "unknown strategy"},
		{"bad-precision", Manifest{Default: "a", Models: map[string]ModelSpec{"a": {Path: model, Precision: "f16"}}}, "unknown precision"},
		{"default-unmanifested", Manifest{Default: "b", Models: map[string]ModelSpec{"a": {Path: model}}}, "not manifested"},
		{"tenant-unmanifested", Manifest{Default: "a", Models: map[string]ModelSpec{"a": {Path: model}}, Tenants: map[string]string{"t": "b"}}, "unmanifested model"},
		{"empty-tenant", Manifest{Default: "a", Models: map[string]ModelSpec{"a": {Path: model}}, Tenants: map[string]string{"": "a"}}, "empty tenant"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			writeManifest(t, dir, tc.m)
			if _, err := LoadManifest(dir); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("LoadManifest error = %v, want substring %q", err, tc.want)
			}
		})
	}
	t.Run("missing-file", func(t *testing.T) {
		if _, err := LoadManifest(t.TempDir()); err == nil {
			t.Fatal("LoadManifest over an empty dir succeeded")
		}
	})
	t.Run("relative-paths-resolve", func(t *testing.T) {
		dir := t.TempDir()
		raw, err := os.ReadFile(fixturePath)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "m.gob"), raw, 0o644); err != nil {
			t.Fatal(err)
		}
		writeManifest(t, dir, Manifest{Default: "a", Models: map[string]ModelSpec{"a": {Path: "m.gob"}}})
		m, err := LoadManifest(dir)
		if err != nil {
			t.Fatal(err)
		}
		if got := m.Models["a"].Path; got != filepath.Join(dir, "m.gob") {
			t.Fatalf("relative path resolved to %q", got)
		}
	})
}

func TestRegistryServesDefaultAndTenants(t *testing.T) {
	r, fx := newTestRegistry(t, nil)
	ts := httptest.NewServer(r.Handler())
	defer ts.Close()

	// Default path: no headers at all.
	rows := defaultRows(4, 123)
	base, err := core.Load(mustOpenFile(t, absFixture(t)))
	if err != nil {
		t.Fatal(err)
	}
	x := mat.New(len(rows), fixtureDim)
	for i, row := range rows {
		copy(x.Row(i), row)
	}
	baseOffline, err := base.Score(context.Background(), x)
	if err != nil {
		t.Fatal(err)
	}
	status, body := scoreVia(t, ts.Client(), ts.URL, rows, "", "")
	if status != http.StatusOK {
		t.Fatalf("default /score: status %d: %s", status, body)
	}
	requireScores(t, body, baseOffline)

	// Tenant header routes to the tenant's model; the answer must be
	// bitwise the tenant model's offline scores, not the default's.
	status, body = scoreVia(t, ts.Client(), ts.URL, fx.rows, "", "tenant-a")
	if status != http.StatusOK {
		t.Fatalf("tenant-a /score: status %d: %s", status, body)
	}
	requireScores(t, body, fx.alphaOffline)

	// The model header wins over the tenant header.
	status, body = scoreVia(t, ts.Client(), ts.URL, fx.rows, "beta", "tenant-a")
	if status != http.StatusOK {
		t.Fatalf("beta /score: status %d: %s", status, body)
	}
	requireScores(t, body, fx.betaOffline)

	// Unknown tenants fall through to the default model.
	status, body = scoreVia(t, ts.Client(), ts.URL, rows, "", "nobody-knows-me")
	if status != http.StatusOK {
		t.Fatalf("unknown-tenant /score: status %d: %s", status, body)
	}
	requireScores(t, body, baseOffline)

	c := r.Counters()
	if c.Loads != 3 { // base eager + alpha + beta
		t.Fatalf("Loads = %d, want 3", c.Loads)
	}
	if got := r.Hot(); len(got) != 3 {
		t.Fatalf("Hot() = %v, want all three models", got)
	}
}

func mustOpenFile(t testing.TB, path string) *os.File {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

// TestUnknownModelTyped404 is the cardinality-hygiene contract: an
// unmanifested model name is rejected with a typed 404 on both wire
// formats, and the bogus name never appears in /metrics.
func TestUnknownModelTyped404(t *testing.T) {
	r, _ := newTestRegistry(t, nil)
	ts := httptest.NewServer(r.Handler())
	defer ts.Close()

	const bogus = "cardinality-bomb-9000"

	// JSON request.
	status, body := scoreVia(t, ts.Client(), ts.URL, defaultRows(2, 1), bogus, "")
	if status != http.StatusNotFound {
		t.Fatalf("JSON unknown model: status %d: %s", status, body)
	}
	var jerr struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &jerr); err != nil || !strings.Contains(jerr.Error, bogus) {
		t.Fatalf("JSON 404 body %q does not carry the typed error", body)
	}

	// Binary request: the 404 must come back as a wire error frame.
	frame, err := wire.AppendRequestF64(nil, defaultRows(2, 1), int(core.ED), false)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/score", bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", wire.ContentType)
	req.Header.Set(HeaderModel, bogus)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("binary unknown model: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != wire.ContentType {
		t.Fatalf("binary 404 Content-Type = %q, want %q", ct, wire.ContentType)
	}
	code, msg, err := wire.DecodeErrorFrame(raw)
	if err != nil {
		t.Fatalf("binary 404 is not a wire error frame: %v", err)
	}
	if code != http.StatusNotFound || !strings.Contains(msg, bogus) {
		t.Fatalf("wire error = (%d, %q), want 404 naming the model", code, msg)
	}

	// Admin endpoints reject via ?model= too.
	dresp, err := ts.Client().Get(ts.URL + "/drift?model=" + bogus)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, dresp.Body)
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNotFound {
		t.Fatalf("/drift?model=%s: status %d, want 404", bogus, dresp.StatusCode)
	}

	// The hygiene point: none of that minted a label or an entry.
	mresp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if strings.Contains(string(mbody), bogus) {
		t.Fatalf("/metrics leaked the unmanifested name %q", bogus)
	}
	if c := r.Counters(); c.HotModels != 1 {
		t.Fatalf("HotModels = %d after rejected requests, want 1", c.HotModels)
	}
}

// TestSingleFlightJoin drives the flight path white-box: a registered
// in-progress flight makes a concurrent acquire wait and share the
// builder's outcome instead of loading twice.
func TestSingleFlightJoin(t *testing.T) {
	r, _ := newTestRegistry(t, nil)

	f := &flight{done: make(chan struct{})}
	r.mu.Lock()
	r.flights["alpha"] = f
	r.mu.Unlock()

	got := make(chan error, 1)
	go func() {
		_, _, err := r.acquire("alpha")
		got <- err
	}()

	// The waiter must be parked on the flight, not loading on its own.
	deadline := time.Now().Add(2 * time.Second)
	for r.Counters().SingleflightWaits == 0 {
		if time.Now().After(deadline) {
			t.Fatal("acquire never joined the in-progress flight")
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case err := <-got:
		t.Fatalf("acquire returned %v before the flight finished", err)
	default:
	}

	wantErr := errors.New("boom")
	r.mu.Lock()
	delete(r.flights, "alpha")
	f.err = wantErr
	r.mu.Unlock()
	close(f.done)

	if err := <-got; !errors.Is(err, wantErr) {
		t.Fatalf("joined acquire err = %v, want the flight's error", err)
	}
	if c := r.Counters(); c.Loads != 1 || c.SingleflightWaits != 1 {
		t.Fatalf("counters = %+v, want Loads 1 (default only), SingleflightWaits 1", c)
	}

	// The failed flight left no residue: a fresh acquire loads cleanly.
	e, release, err := r.acquire("alpha")
	if err != nil {
		t.Fatalf("acquire after failed flight: %v", err)
	}
	release()
	if e.name != "alpha" {
		t.Fatalf("acquired %q, want alpha", e.name)
	}
}

// TestLRUEvictionCycle checks the bound, the LRU choice, and that a
// re-loaded model scores bitwise-identically after its eviction.
func TestLRUEvictionCycle(t *testing.T) {
	r, fx := newTestRegistry(t, func(c *Config) { c.MaxHot = 2 })
	ts := httptest.NewServer(r.Handler())
	defer ts.Close()

	score := func(model string, want []float64) {
		t.Helper()
		status, body := scoreVia(t, ts.Client(), ts.URL, fx.rows, model, "")
		if status != http.StatusOK {
			t.Fatalf("%s /score: status %d: %s", model, status, body)
		}
		requireScores(t, body, want)
	}

	score("alpha", fx.alphaOffline) // hot: base, alpha
	score("beta", fx.betaOffline)   // alpha is LRU -> evicted; hot: base, beta
	c := r.Counters()
	if c.Evictions != 1 || c.HotModels != 2 {
		t.Fatalf("after beta load: counters %+v, want 1 eviction, 2 hot", c)
	}
	hot := r.Hot()
	if len(hot) != 2 || hot[0] != "base" || hot[1] != "beta" {
		t.Fatalf("Hot() = %v, want [base beta]", hot)
	}

	// Reload after evict: bitwise-identical to the first serving.
	score("alpha", fx.alphaOffline)
	c = r.Counters()
	if c.Evictions != 2 || c.Loads != 4 {
		t.Fatalf("after alpha reload: counters %+v, want 2 evictions, 4 loads", c)
	}
}

// TestRegistryEvictUnderLoad evicts a model while one of its batches
// is held in flight: the pinned request must finish 200 with correct
// scores (eviction never cancels work), and the model must score
// bitwise-identically when re-loaded. Run under -race by the ci smoke.
func TestRegistryEvictUnderLoad(t *testing.T) {
	defer faultinject.Reset()
	r, fx := newTestRegistry(t, func(c *Config) { c.MaxHot = 2 })
	ts := httptest.NewServer(r.Handler())
	defer ts.Close()

	// Warm alpha so the slow-score fault hits its batch, not its load.
	status, body := scoreVia(t, ts.Client(), ts.URL, fx.rows, "alpha", "")
	if status != http.StatusOK {
		t.Fatalf("warm alpha: status %d: %s", status, body)
	}

	faultinject.ArmDelay(faultinject.ServeSlowScore, 300*time.Millisecond, 1)
	type res struct {
		status int
		body   []byte
	}
	inflight := make(chan res, 1)
	go func() {
		status, body := scoreVia(t, ts.Client(), ts.URL, fx.rows, "alpha", "")
		inflight <- res{status, body}
	}()
	// Wait until alpha's batch is inside the delayed inference pass.
	deadline := time.Now().Add(2 * time.Second)
	for faultinject.Fired(faultinject.ServeSlowScore) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("slow-score fault never fired")
		}
		time.Sleep(time.Millisecond)
	}

	// Loading beta forces the LRU choice onto alpha — whose request is
	// still in flight. Publish-before-close means beta's caller never
	// waits on alpha's drain.
	status, body = scoreVia(t, ts.Client(), ts.URL, fx.rows, "beta", "")
	if status != http.StatusOK {
		t.Fatalf("beta during alpha in-flight: status %d: %s", status, body)
	}
	requireScores(t, body, fx.betaOffline)
	if c := r.Counters(); c.Evictions == 0 {
		t.Fatalf("counters %+v: beta's load should have evicted alpha", c)
	}

	// The pinned alpha request survives its own eviction.
	got := <-inflight
	if got.status != http.StatusOK {
		t.Fatalf("in-flight alpha request: status %d: %s", got.status, got.body)
	}
	requireScores(t, got.body, fx.alphaOffline)

	// And a fresh load serves the same bits as before the eviction.
	status, body = scoreVia(t, ts.Client(), ts.URL, fx.rows, "alpha", "")
	if status != http.StatusOK {
		t.Fatalf("alpha after evict: status %d: %s", status, body)
	}
	requireScores(t, body, fx.alphaOffline)
}

// TestRegistryLoadFailure injects a cold-load failure: the request
// errors, the counter moves, nothing half-built leaks, and the next
// request loads clean.
func TestRegistryLoadFailure(t *testing.T) {
	defer faultinject.Reset()
	r, fx := newTestRegistry(t, nil)
	ts := httptest.NewServer(r.Handler())
	defer ts.Close()

	faultinject.Arm(faultinject.RegistryLoadFail, 1)
	status, body := scoreVia(t, ts.Client(), ts.URL, fx.rows, "alpha", "")
	if status != http.StatusInternalServerError {
		t.Fatalf("injected load failure: status %d: %s", status, body)
	}
	if !strings.Contains(string(body), "injected") {
		t.Fatalf("error body %q does not name the injected failure", body)
	}
	c := r.Counters()
	if c.LoadErrs != 1 || c.HotModels != 1 {
		t.Fatalf("counters %+v, want 1 load error and only the default hot", c)
	}

	// The fault is spent; the retry loads and serves.
	status, body = scoreVia(t, ts.Client(), ts.URL, fx.rows, "alpha", "")
	if status != http.StatusOK {
		t.Fatalf("retry after injected failure: status %d: %s", status, body)
	}
	requireScores(t, body, fx.alphaOffline)
}

// TestPerModelReloadAndMetrics: /reload?model= bumps only that model's
// version, and /metrics renders per-model labeled series exactly once
// per metric name.
func TestPerModelReloadAndMetrics(t *testing.T) {
	r, fx := newTestRegistry(t, nil)
	ts := httptest.NewServer(r.Handler())
	defer ts.Close()

	// Warm alpha hot.
	if status, body := scoreVia(t, ts.Client(), ts.URL, fx.rows, "alpha", ""); status != http.StatusOK {
		t.Fatalf("warm alpha: status %d: %s", status, body)
	}

	reload := func(query string) map[string]int64 {
		t.Helper()
		resp, err := ts.Client().Post(ts.URL+"/reload"+query, "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/reload%s: status %d: %s", query, resp.StatusCode, body)
		}
		var out map[string]int64
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatalf("/reload%s: %v (%s)", query, err, body)
		}
		return out
	}
	if v := reload("?model=alpha")["model_version"]; v != 2 {
		t.Fatalf("alpha reload -> version %d, want 2", v)
	}

	scrape := func() string {
		t.Helper()
		resp, err := ts.Client().Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return string(body)
	}
	m := scrape()
	for _, want := range []string{
		`targad_serve_model_version{model="alpha"} 2`,
		`targad_serve_model_version{model="base"} 1`,
		`targad_serve_requests_total{model="alpha"}`,
		`targad_serve_requests_total{model="base"}`,
		"targad_registry_models 3",
		"targad_registry_hot_models 2",
		"targad_registry_loads_total 2",
	} {
		if !strings.Contains(m, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, m)
		}
	}
	// Exposition validity: every metric name has exactly one TYPE line.
	seen := map[string]int{}
	for _, line := range strings.Split(m, "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			seen[strings.Fields(line)[2]]++
		}
	}
	for name, n := range seen {
		if n != 1 {
			t.Fatalf("metric %s declared %d TYPE blocks, want 1", name, n)
		}
	}

	// /models reflects the same picture.
	resp, err := ts.Client().Get(ts.URL + "/models")
	if err != nil {
		t.Fatal(err)
	}
	var models struct {
		Default string   `json:"default"`
		Models  []string `json:"models"`
		Hot     []string `json:"hot"`
		MaxHot  int      `json:"max_hot"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&models); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if models.Default != "base" || len(models.Models) != 3 || len(models.Hot) != 2 || models.MaxHot != 4 {
		t.Fatalf("/models = %+v", models)
	}
}

// TestRegistryClose: a closed registry answers 503 for cold loads and
// drains cleanly.
func TestRegistryClose(t *testing.T) {
	fx := tenantModels(t)
	dir := t.TempDir()
	writeManifest(t, dir, Manifest{
		Default: "base",
		Models: map[string]ModelSpec{
			"base":  {Path: absFixture(t)},
			"alpha": {Path: fx.alpha},
		},
	})
	r, err := New(Config{Dir: dir, Base: serve.Config{MaxBatch: 1, Strategy: core.ED}})
	if err != nil {
		t.Fatal(err)
	}
	r.Close()
	r.Close() // idempotent

	if _, _, err := r.acquire("alpha"); !errors.Is(err, ErrClosed) {
		t.Fatalf("acquire after Close: err = %v, want ErrClosed", err)
	}
	ts := httptest.NewServer(r.Handler())
	defer ts.Close()
	status, body := scoreVia(t, ts.Client(), ts.URL, fx.rows, "alpha", "")
	if status != http.StatusServiceUnavailable {
		t.Fatalf("cold score after Close: status %d: %s", status, body)
	}
}
