package metrics_test

import (
	"fmt"

	"targad/internal/metrics"
)

func ExampleAUPRC() {
	scores := []float64{0.9, 0.8, 0.7, 0.6}
	labels := []bool{true, false, true, false}
	v, _ := metrics.AUPRC(scores, labels)
	fmt.Printf("%.4f\n", v)
	// Output: 0.8333
}

func ExampleAUROC() {
	scores := []float64{0.8, 0.4, 0.6, 0.2}
	labels := []bool{true, true, false, false}
	v, _ := metrics.AUROC(scores, labels)
	fmt.Printf("%.2f\n", v)
	// Output: 0.75
}

func ExamplePrecisionAtK() {
	scores := []float64{0.9, 0.8, 0.7, 0.6}
	labels := []bool{true, false, true, true}
	p, _ := metrics.PrecisionAtK(scores, labels, 3)
	fmt.Printf("%.3f\n", p)
	// Output: 0.667
}

func ExampleConfusion_Report() {
	conf, _ := metrics.NewConfusion(
		[]string{"normal", "target", "non-target"},
		[]int{0, 0, 1, 1, 2, 2},
		[]int{0, 0, 1, 2, 2, 2},
	)
	rep := conf.Report()
	fmt.Printf("accuracy %.2f, target recall %.1f\n", rep.Accuracy, rep.PerClass[1].Recall)
	// Output: accuracy 0.83, target recall 0.5
}
