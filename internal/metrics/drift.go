package metrics

import (
	"errors"
	"fmt"
	"math"
)

// Drift statistics over binned distributions. The live-monitoring
// subsystem (internal/monitor) compares a serving-time window of
// feature values, S^tar scores, and three-way decisions against the
// reference profile captured at Fit time; these helpers implement the
// comparisons. All three take histograms (counts or proportions — they
// normalize internally) over identical bin edges.

// psiFloor is the proportion floor applied before the PSI log ratio:
// an empty bin on either side would make the index infinite, while the
// classic remedy — flooring at a small constant — keeps PSI finite and
// monotone in the underlying shift.
const psiFloor = 1e-4

var errEmptyHistogram = errors.New("metrics: histogram has no mass")

// normalizeHist validates one histogram and returns its proportions.
func normalizeHist(h []float64) ([]float64, error) {
	var sum float64
	for i, v := range h {
		if math.IsNaN(v) || v < 0 {
			return nil, fmt.Errorf("metrics: invalid histogram mass %v at bin %d", v, i)
		}
		sum += v
	}
	if sum == 0 {
		return nil, errEmptyHistogram
	}
	out := make([]float64, len(h))
	for i, v := range h {
		out[i] = v / sum
	}
	return out, nil
}

func checkPair(ref, cur []float64) error {
	if len(ref) == 0 {
		return errors.New("metrics: empty histogram")
	}
	if len(ref) != len(cur) {
		return fmt.Errorf("metrics: %d reference bins vs %d current", len(ref), len(cur))
	}
	return nil
}

// PSI returns the population stability index between a reference and a
// current distribution over the same bins:
//
//	PSI = Σ_i (c_i − r_i) · ln(c_i / r_i)
//
// after normalizing both to proportions and flooring each bin at 1e-4.
// PSI is 0 iff the (floored) distributions match and grows without
// sign as they diverge; the conventional reading is < 0.1 stable,
// 0.1–0.25 moderate shift, > 0.25 major shift.
func PSI(ref, cur []float64) (float64, error) {
	if err := checkPair(ref, cur); err != nil {
		return 0, err
	}
	r, err := normalizeHist(ref)
	if err != nil {
		return 0, fmt.Errorf("%w (reference)", err)
	}
	c, err := normalizeHist(cur)
	if err != nil {
		return 0, fmt.Errorf("%w (current)", err)
	}
	var psi float64
	for i := range r {
		ri, ci := r[i], c[i]
		if ri < psiFloor {
			ri = psiFloor
		}
		if ci < psiFloor {
			ci = psiFloor
		}
		psi += (ci - ri) * math.Log(ci/ri)
	}
	return psi, nil
}

// KSFromHistograms returns the two-sample Kolmogorov–Smirnov statistic
// — the maximum absolute difference between the two empirical CDFs —
// computed from histograms over identical bin edges. Binning coarsens
// the exact statistic, but with the same fixed edges on both sides the
// coarsened value remains a metric in [0, 1] and is what the drift
// monitor thresholds.
func KSFromHistograms(ref, cur []float64) (float64, error) {
	if err := checkPair(ref, cur); err != nil {
		return 0, err
	}
	r, err := normalizeHist(ref)
	if err != nil {
		return 0, fmt.Errorf("%w (reference)", err)
	}
	c, err := normalizeHist(cur)
	if err != nil {
		return 0, fmt.Errorf("%w (current)", err)
	}
	var ks, cr, cc float64
	for i := range r {
		cr += r[i]
		cc += c[i]
		if d := math.Abs(cr - cc); d > ks {
			ks = d
		}
	}
	return ks, nil
}

// TotalVariation returns the total variation distance
// ½·Σ_i |r_i − c_i| between two distributions over the same support,
// normalized to proportions first. It is the drift monitor's measure
// of decision-mix deviation: 0 for identical mixes, 1 for disjoint
// ones.
func TotalVariation(ref, cur []float64) (float64, error) {
	if err := checkPair(ref, cur); err != nil {
		return 0, err
	}
	r, err := normalizeHist(ref)
	if err != nil {
		return 0, fmt.Errorf("%w (reference)", err)
	}
	c, err := normalizeHist(cur)
	if err != nil {
		return 0, fmt.Errorf("%w (current)", err)
	}
	var tv float64
	for i := range r {
		tv += math.Abs(r[i] - c[i])
	}
	return tv / 2, nil
}
