// Package metrics implements the evaluation measures used throughout
// the paper: AUROC, AUPRC (average precision), ROC and PR curves, and
// confusion-matrix statistics (precision, recall, F1 with macro and
// weighted averaging) for the three-way identification experiment.
package metrics

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrDegenerate reports that a ranking metric is undefined because the
// labels contain only one class.
var ErrDegenerate = errors.New("metrics: labels contain a single class")

// rankOrder returns indices sorting scores descending; ties keep input
// order (stable), which combined with the tie-aware accumulation below
// makes both AUCs tie-correct.
func rankOrder(scores []float64) []int {
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	return idx
}

func validate(scores []float64, labels []bool) (pos, neg int, err error) {
	if len(scores) != len(labels) {
		return 0, 0, fmt.Errorf("metrics: %d scores vs %d labels", len(scores), len(labels))
	}
	if len(scores) == 0 {
		return 0, 0, errors.New("metrics: empty input")
	}
	for i, s := range scores {
		if math.IsNaN(s) {
			return 0, 0, fmt.Errorf("metrics: NaN score at index %d", i)
		}
	}
	for _, l := range labels {
		if l {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		return pos, neg, ErrDegenerate
	}
	return pos, neg, nil
}

// AUROC returns the area under the ROC curve of scores against binary
// labels (true = positive), handling ties by assigning half credit —
// equivalent to the Mann–Whitney U statistic.
func AUROC(scores []float64, labels []bool) (float64, error) {
	pos, neg, err := validate(scores, labels)
	if err != nil {
		return 0, err
	}
	idx := rankOrder(scores)
	var auc float64
	var tp, fp int
	i := 0
	for i < len(idx) {
		j := i
		var dtp, dfp int
		for j < len(idx) && scores[idx[j]] == scores[idx[i]] {
			if labels[idx[j]] {
				dtp++
			} else {
				dfp++
			}
			j++
		}
		// Trapezoid over the tie block.
		auc += float64(dfp) * (float64(tp) + float64(dtp)/2)
		tp += dtp
		fp += dfp
		i = j
	}
	return auc / (float64(pos) * float64(neg)), nil
}

// AUPRC returns the area under the precision-recall curve computed as
// average precision (the step-wise integral ∑ (R_i − R_{i−1})·P_i),
// the convention used by scikit-learn's average_precision_score that
// anomaly-detection papers report.
func AUPRC(scores []float64, labels []bool) (float64, error) {
	pos, _, err := validate(scores, labels)
	if err != nil {
		return 0, err
	}
	idx := rankOrder(scores)
	var ap float64
	var tp, seen int
	i := 0
	for i < len(idx) {
		j := i
		dtp := 0
		for j < len(idx) && scores[idx[j]] == scores[idx[i]] {
			if labels[idx[j]] {
				dtp++
			}
			j++
		}
		seenNew := j
		tpNew := tp + dtp
		if dtp > 0 {
			precision := float64(tpNew) / float64(seenNew)
			ap += precision * float64(dtp) / float64(pos)
		}
		tp = tpNew
		seen = seenNew
		i = j
	}
	_ = seen
	return ap, nil
}

// PrecisionAtK returns the fraction of true positives among the k
// highest-scored instances — the "review budget" metric of the paper's
// payment-platform scenario. Ties are broken by input order; k is
// clamped to the input size.
func PrecisionAtK(scores []float64, labels []bool, k int) (float64, error) {
	if len(scores) != len(labels) {
		return 0, fmt.Errorf("metrics: %d scores vs %d labels", len(scores), len(labels))
	}
	if len(scores) == 0 || k <= 0 {
		return 0, errors.New("metrics: empty input or non-positive k")
	}
	if k > len(scores) {
		k = len(scores)
	}
	idx := rankOrder(scores)
	var tp int
	for _, i := range idx[:k] {
		if labels[i] {
			tp++
		}
	}
	return float64(tp) / float64(k), nil
}

// ROCPoint is one operating point of a ROC curve.
type ROCPoint struct{ FPR, TPR float64 }

// ROCCurve returns the ROC curve points from (0,0) to (1,1), one per
// distinct score threshold.
func ROCCurve(scores []float64, labels []bool) ([]ROCPoint, error) {
	pos, neg, err := validate(scores, labels)
	if err != nil {
		return nil, err
	}
	idx := rankOrder(scores)
	pts := []ROCPoint{{0, 0}}
	var tp, fp int
	i := 0
	for i < len(idx) {
		j := i
		for j < len(idx) && scores[idx[j]] == scores[idx[i]] {
			if labels[idx[j]] {
				tp++
			} else {
				fp++
			}
			j++
		}
		pts = append(pts, ROCPoint{FPR: float64(fp) / float64(neg), TPR: float64(tp) / float64(pos)})
		i = j
	}
	return pts, nil
}

// PRPoint is one operating point of a precision-recall curve.
type PRPoint struct{ Recall, Precision float64 }

// PRCurve returns precision-recall points, one per distinct threshold,
// ordered by increasing recall.
func PRCurve(scores []float64, labels []bool) ([]PRPoint, error) {
	pos, _, err := validate(scores, labels)
	if err != nil {
		return nil, err
	}
	idx := rankOrder(scores)
	var pts []PRPoint
	var tp, seen int
	i := 0
	for i < len(idx) {
		j := i
		for j < len(idx) && scores[idx[j]] == scores[idx[i]] {
			if labels[idx[j]] {
				tp++
			}
			seen++
			j++
		}
		pts = append(pts, PRPoint{
			Recall:    float64(tp) / float64(pos),
			Precision: float64(tp) / float64(seen),
		})
		i = j
	}
	return pts, nil
}
