package metrics

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"targad/internal/rng"
)

func TestAUROCPerfectAndWorst(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	labels := []bool{true, true, false, false}
	if v, err := AUROC(scores, labels); err != nil || v != 1 {
		t.Fatalf("perfect AUROC = %v, %v", v, err)
	}
	inv := []bool{false, false, true, true}
	if v, _ := AUROC(scores, inv); v != 0 {
		t.Fatalf("worst AUROC = %v", v)
	}
}

func TestAUROCRandomIsHalf(t *testing.T) {
	r := rng.New(1)
	n := 5000
	scores := make([]float64, n)
	labels := make([]bool, n)
	for i := range scores {
		scores[i] = r.Float64()
		labels[i] = r.Bernoulli(0.3)
	}
	v, err := AUROC(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-0.5) > 0.03 {
		t.Fatalf("random AUROC = %v, want ~0.5", v)
	}
}

func TestAUROCTiesHalfCredit(t *testing.T) {
	// All scores equal: AUROC must be exactly 0.5.
	scores := []float64{1, 1, 1, 1}
	labels := []bool{true, false, true, false}
	v, err := AUROC(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0.5 {
		t.Fatalf("all-ties AUROC = %v, want 0.5", v)
	}
}

func TestAUROCKnownValue(t *testing.T) {
	// Hand-computed: pairs (pos, neg) ranked correctly: scores
	// pos{0.8, 0.4}, neg{0.6, 0.2}. Pairs: (0.8>0.6)+(0.8>0.2)+
	// (0.4<0.6=0)+(0.4>0.2) = 3 of 4 → 0.75.
	scores := []float64{0.8, 0.4, 0.6, 0.2}
	labels := []bool{true, true, false, false}
	v, err := AUROC(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0.75 {
		t.Fatalf("AUROC = %v, want 0.75", v)
	}
}

func TestAUPRCPerfect(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	labels := []bool{true, true, false, false}
	if v, err := AUPRC(scores, labels); err != nil || v != 1 {
		t.Fatalf("perfect AUPRC = %v, %v", v, err)
	}
}

func TestAUPRCKnownValue(t *testing.T) {
	// Ranking: pos, neg, pos, neg. AP = (1/2)·(1·1 + (2/3)·1)
	// = 0.5·(1 + 0.6667) = 0.8333…
	scores := []float64{0.9, 0.8, 0.7, 0.6}
	labels := []bool{true, false, true, false}
	v, err := AUPRC(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	want := (1.0 + 2.0/3.0) / 2
	if math.Abs(v-want) > 1e-12 {
		t.Fatalf("AUPRC = %v, want %v", v, want)
	}
}

func TestAUPRCBaselineEqualsPrevalence(t *testing.T) {
	// With all scores tied, AP equals the positive prevalence.
	scores := make([]float64, 1000)
	labels := make([]bool, 1000)
	for i := range labels {
		labels[i] = i < 200
	}
	v, err := AUPRC(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-0.2) > 1e-12 {
		t.Fatalf("tied AUPRC = %v, want 0.2", v)
	}
}

func TestRankMetricsMonotoneInvariance(t *testing.T) {
	r := rng.New(2)
	f := func(seed int64) bool {
		rr := rng.New(seed)
		n := 50
		scores := make([]float64, n)
		labels := make([]bool, n)
		pos := 0
		for i := range scores {
			scores[i] = rr.Float64()
			labels[i] = rr.Bernoulli(0.4)
			if labels[i] {
				pos++
			}
		}
		if pos == 0 || pos == n {
			return true // degenerate; skip
		}
		transformed := make([]float64, n)
		for i, s := range scores {
			transformed[i] = math.Exp(3*s) + 7 // strictly monotone
		}
		a1, err1 := AUROC(scores, labels)
		a2, err2 := AUROC(transformed, labels)
		p1, err3 := AUPRC(scores, labels)
		p2, err4 := AUPRC(transformed, labels)
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
			return false
		}
		return math.Abs(a1-a2) < 1e-12 && math.Abs(p1-p2) < 1e-12
	}
	cfg := &quick.Config{MaxCount: 30, Rand: nil}
	_ = r
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestMetricsBounds(t *testing.T) {
	f := func(seed int64) bool {
		rr := rng.New(seed)
		n := 30
		scores := make([]float64, n)
		labels := make([]bool, n)
		pos := 0
		for i := range scores {
			scores[i] = rr.Normal(0, 10)
			labels[i] = rr.Bernoulli(0.5)
			if labels[i] {
				pos++
			}
		}
		if pos == 0 || pos == n {
			return true
		}
		a, err := AUROC(scores, labels)
		if err != nil || a < 0 || a > 1 {
			return false
		}
		p, err := AUPRC(scores, labels)
		if err != nil || p < 0 || p > 1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDegenerateInputs(t *testing.T) {
	if _, err := AUROC([]float64{1, 2}, []bool{true, true}); !errors.Is(err, ErrDegenerate) {
		t.Fatalf("single-class AUROC error = %v", err)
	}
	if _, err := AUPRC([]float64{1, 2}, []bool{false, false}); !errors.Is(err, ErrDegenerate) {
		t.Fatalf("single-class AUPRC error = %v", err)
	}
	if _, err := AUROC(nil, nil); err == nil {
		t.Fatal("empty input must error")
	}
	if _, err := AUROC([]float64{1}, []bool{true, false}); err == nil {
		t.Fatal("length mismatch must error")
	}
	if _, err := AUROC([]float64{math.NaN(), 1}, []bool{true, false}); err == nil {
		t.Fatal("NaN score must error")
	}
}

func TestPrecisionAtK(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.7, 0.6}
	labels := []bool{true, false, true, true}
	if p, err := PrecisionAtK(scores, labels, 2); err != nil || p != 0.5 {
		t.Fatalf("P@2 = %v, %v", p, err)
	}
	if p, _ := PrecisionAtK(scores, labels, 3); math.Abs(p-2.0/3) > 1e-12 {
		t.Fatalf("P@3 = %v", p)
	}
	// k beyond n clamps to the full prevalence.
	if p, _ := PrecisionAtK(scores, labels, 99); p != 0.75 {
		t.Fatalf("P@99 = %v", p)
	}
	if _, err := PrecisionAtK(scores, labels, 0); err == nil {
		t.Fatal("k=0 must error")
	}
	if _, err := PrecisionAtK(scores, labels[:2], 1); err == nil {
		t.Fatal("length mismatch must error")
	}
}

func TestROCCurveEndpoints(t *testing.T) {
	scores := []float64{0.9, 0.5, 0.4, 0.1}
	labels := []bool{true, false, true, false}
	pts, err := ROCCurve(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].FPR != 0 || pts[0].TPR != 0 {
		t.Fatalf("ROC must start at origin, got %+v", pts[0])
	}
	last := pts[len(pts)-1]
	if last.FPR != 1 || last.TPR != 1 {
		t.Fatalf("ROC must end at (1,1), got %+v", last)
	}
	// Monotone non-decreasing in both axes.
	for i := 1; i < len(pts); i++ {
		if pts[i].FPR < pts[i-1].FPR || pts[i].TPR < pts[i-1].TPR {
			t.Fatalf("ROC not monotone at %d: %+v -> %+v", i, pts[i-1], pts[i])
		}
	}
}

func TestPRCurveShape(t *testing.T) {
	scores := []float64{0.9, 0.5, 0.4, 0.1}
	labels := []bool{true, false, true, false}
	pts, err := PRCurve(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].Precision != 1 || pts[0].Recall != 0.5 {
		t.Fatalf("first PR point = %+v", pts[0])
	}
	last := pts[len(pts)-1]
	if last.Recall != 1 {
		t.Fatalf("PR must reach recall 1, got %+v", last)
	}
}

func TestConfusionReport(t *testing.T) {
	// 3 classes; hand-verified counts.
	actual := []int{0, 0, 0, 1, 1, 2, 2, 2, 2, 2}
	pred := []int{0, 0, 1, 1, 1, 2, 2, 2, 0, 1}
	conf, err := NewConfusion([]string{"a", "b", "c"}, actual, pred)
	if err != nil {
		t.Fatal(err)
	}
	rep := conf.Report()
	// class a: tp=2, predicted a = 3 → precision 2/3; support 3 → recall 2/3.
	if math.Abs(rep.PerClass[0].Precision-2.0/3) > 1e-12 {
		t.Fatalf("a precision = %v", rep.PerClass[0].Precision)
	}
	if math.Abs(rep.PerClass[0].Recall-2.0/3) > 1e-12 {
		t.Fatalf("a recall = %v", rep.PerClass[0].Recall)
	}
	// class b: tp=2, predicted b = 4 → precision 0.5; support 2 → recall 1.
	if rep.PerClass[1].Precision != 0.5 || rep.PerClass[1].Recall != 1 {
		t.Fatalf("b report = %+v", rep.PerClass[1])
	}
	// class c: tp=3, predicted c = 3 → precision 1; support 5 → recall 0.6.
	if rep.PerClass[2].Precision != 1 || math.Abs(rep.PerClass[2].Recall-0.6) > 1e-12 {
		t.Fatalf("c report = %+v", rep.PerClass[2])
	}
	if math.Abs(rep.Accuracy-0.7) > 1e-12 {
		t.Fatalf("accuracy = %v", rep.Accuracy)
	}
	// Weighted recall equals accuracy for complete confusion matrices.
	if math.Abs(rep.WeightedAvg.Recall-rep.Accuracy) > 1e-12 {
		t.Fatalf("weighted recall %v != accuracy %v", rep.WeightedAvg.Recall, rep.Accuracy)
	}
}

func TestConfusionValidation(t *testing.T) {
	if _, err := NewConfusion([]string{"a"}, []int{0}, []int{0, 0}); err == nil {
		t.Fatal("length mismatch must error")
	}
	if _, err := NewConfusion([]string{"a"}, []int{1}, []int{0}); err == nil {
		t.Fatal("out-of-range class must error")
	}
}

func TestConfusionZeroDivision(t *testing.T) {
	// Class b never predicted and never actual: all its stats are 0,
	// no NaNs anywhere.
	conf, err := NewConfusion([]string{"a", "b"}, []int{0, 0}, []int{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	rep := conf.Report()
	for _, c := range rep.PerClass {
		if math.IsNaN(c.Precision) || math.IsNaN(c.Recall) || math.IsNaN(c.F1) {
			t.Fatalf("NaN in report %+v", c)
		}
	}
}

func TestMeanStd(t *testing.T) {
	mean, std := MeanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if mean != 5 || std != 2 {
		t.Fatalf("MeanStd = %v, %v", mean, std)
	}
	if m, s := MeanStd(nil); m != 0 || s != 0 {
		t.Fatal("empty MeanStd must be zero")
	}
}
