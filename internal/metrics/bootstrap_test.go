package metrics

import (
	"testing"

	"targad/internal/rng"
)

func TestBootstrapCICoversPointEstimate(t *testing.T) {
	r := rng.New(1)
	n := 400
	scores := make([]float64, n)
	labels := make([]bool, n)
	for i := range scores {
		labels[i] = i%5 == 0
		if labels[i] {
			scores[i] = r.Normal(1, 0.5)
		} else {
			scores[i] = r.Normal(0, 0.5)
		}
	}
	point, err := AUPRC(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi, err := BootstrapCI(AUPRC, scores, labels, 200, 0.95, 7)
	if err != nil {
		t.Fatal(err)
	}
	if lo > point || hi < point {
		t.Fatalf("CI [%v, %v] excludes point estimate %v", lo, hi, point)
	}
	if lo >= hi {
		t.Fatalf("degenerate CI [%v, %v]", lo, hi)
	}
	if lo < 0 || hi > 1 {
		t.Fatalf("CI outside [0,1]: [%v, %v]", lo, hi)
	}
}

func TestBootstrapCINarrowsWithSeparation(t *testing.T) {
	r := rng.New(2)
	n := 300
	scores := make([]float64, n)
	labels := make([]bool, n)
	for i := range scores {
		labels[i] = i%4 == 0
		if labels[i] {
			scores[i] = 10 + r.Float64() // perfectly separated
		} else {
			scores[i] = r.Float64()
		}
	}
	lo, hi, err := BootstrapCI(AUROC, scores, labels, 100, 0.95, 3)
	if err != nil {
		t.Fatal(err)
	}
	if lo < 0.999 || hi != 1 {
		t.Fatalf("perfect separation CI = [%v, %v], want ~[1,1]", lo, hi)
	}
}

func TestBootstrapCIValidation(t *testing.T) {
	if _, _, err := BootstrapCI(AUPRC, nil, nil, 100, 0.95, 1); err == nil {
		t.Fatal("empty input must error")
	}
	if _, _, err := BootstrapCI(AUPRC, []float64{1}, []bool{true}, 5, 0.95, 1); err == nil {
		t.Fatal("too few iterations must error")
	}
	if _, _, err := BootstrapCI(AUPRC, []float64{1, 2}, []bool{true, false}, 100, 1.5, 1); err == nil {
		t.Fatal("bad level must error")
	}
	// All-one-class inputs: every resample degenerate.
	if _, _, err := BootstrapCI(AUPRC, []float64{1, 2}, []bool{true, true}, 100, 0.95, 1); err == nil {
		t.Fatal("degenerate labels must error")
	}
}
