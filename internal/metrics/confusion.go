package metrics

import (
	"fmt"
	"math"
)

// Confusion is a square multi-class confusion matrix;
// Counts[actual][predicted] holds the number of instances.
type Confusion struct {
	Classes []string
	Counts  [][]int
}

// NewConfusion builds a confusion matrix over the named classes from
// parallel actual/predicted class-index slices.
func NewConfusion(classes []string, actual, predicted []int) (*Confusion, error) {
	if len(actual) != len(predicted) {
		return nil, fmt.Errorf("metrics: %d actual vs %d predicted", len(actual), len(predicted))
	}
	k := len(classes)
	c := &Confusion{Classes: classes, Counts: make([][]int, k)}
	for i := range c.Counts {
		c.Counts[i] = make([]int, k)
	}
	for i, a := range actual {
		p := predicted[i]
		if a < 0 || a >= k || p < 0 || p >= k {
			return nil, fmt.Errorf("metrics: class index out of range at %d (actual=%d predicted=%d, k=%d)", i, a, p, k)
		}
		c.Counts[a][p]++
	}
	return c, nil
}

// ClassReport holds per-class detection quality.
type ClassReport struct {
	Class     string
	Precision float64
	Recall    float64
	F1        float64
	Support   int
}

// Report summarizes one row of Table IV: per-class precision, recall
// and F1, plus macro and support-weighted averages.
type Report struct {
	PerClass    []ClassReport
	MacroAvg    ClassReport
	WeightedAvg ClassReport
	Accuracy    float64
}

// Report computes per-class and averaged precision/recall/F1.
// Undefined ratios (zero denominators) are reported as 0, matching
// scikit-learn's zero_division=0 behaviour.
func (c *Confusion) Report() *Report {
	k := len(c.Classes)
	rep := &Report{}
	var total, correct int
	colSums := make([]int, k)
	rowSums := make([]int, k)
	for a := 0; a < k; a++ {
		for p := 0; p < k; p++ {
			n := c.Counts[a][p]
			total += n
			rowSums[a] += n
			colSums[p] += n
			if a == p {
				correct += n
			}
		}
	}
	var macroP, macroR, macroF float64
	var wP, wR, wF float64
	for i := 0; i < k; i++ {
		tp := float64(c.Counts[i][i])
		var prec, rec, f1 float64
		if colSums[i] > 0 {
			prec = tp / float64(colSums[i])
		}
		if rowSums[i] > 0 {
			rec = tp / float64(rowSums[i])
		}
		if prec+rec > 0 {
			f1 = 2 * prec * rec / (prec + rec)
		}
		rep.PerClass = append(rep.PerClass, ClassReport{
			Class: c.Classes[i], Precision: prec, Recall: rec, F1: f1, Support: rowSums[i],
		})
		macroP += prec
		macroR += rec
		macroF += f1
		w := float64(rowSums[i])
		wP += w * prec
		wR += w * rec
		wF += w * f1
	}
	kk := float64(k)
	rep.MacroAvg = ClassReport{Class: "macro avg", Precision: macroP / kk, Recall: macroR / kk, F1: macroF / kk, Support: total}
	if total > 0 {
		t := float64(total)
		rep.WeightedAvg = ClassReport{Class: "weighted avg", Precision: wP / t, Recall: wR / t, F1: wF / t, Support: total}
		rep.Accuracy = float64(correct) / t
	}
	return rep
}

// MeanStd returns the mean and sample-free (population) standard
// deviation of xs, the aggregation used for every "± std" cell in the
// paper's tables.
func MeanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, v := range xs {
		mean += v
	}
	mean /= float64(len(xs))
	for _, v := range xs {
		d := v - mean
		std += d * d
	}
	std = math.Sqrt(std / float64(len(xs)))
	return mean, std
}
