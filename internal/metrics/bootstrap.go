package metrics

import (
	"errors"
	"sort"

	"targad/internal/rng"
)

// BootstrapCI estimates a percentile confidence interval for a rank
// metric by resampling (scores, labels) pairs with replacement. metric
// is typically AUPRC or AUROC; resamples on which the metric is
// undefined (single-class draws) are skipped. level is the coverage,
// e.g. 0.95.
//
// Rank metrics on heavily imbalanced test sets — SQB has a couple
// hundred positives among 150k rows — carry sampling error that a
// single point estimate hides; the experiment write-ups use these
// intervals to distinguish wins from ties.
func BootstrapCI(metric func([]float64, []bool) (float64, error), scores []float64, labels []bool, iters int, level float64, seed int64) (lo, hi float64, err error) {
	if len(scores) != len(labels) || len(scores) == 0 {
		return 0, 0, errors.New("metrics: bootstrap needs equal, non-empty inputs")
	}
	if iters < 10 {
		return 0, 0, errors.New("metrics: bootstrap needs at least 10 iterations")
	}
	if level <= 0 || level >= 1 {
		return 0, 0, errors.New("metrics: level must be in (0,1)")
	}
	r := rng.New(seed)
	n := len(scores)
	bs := make([]float64, n)
	bl := make([]bool, n)
	vals := make([]float64, 0, iters)
	for it := 0; it < iters; it++ {
		for i := 0; i < n; i++ {
			j := r.Intn(n)
			bs[i] = scores[j]
			bl[i] = labels[j]
		}
		v, err := metric(bs, bl)
		if err != nil {
			continue // degenerate resample
		}
		vals = append(vals, v)
	}
	if len(vals) < iters/2 {
		return 0, 0, errors.New("metrics: too many degenerate bootstrap resamples")
	}
	sort.Float64s(vals)
	alpha := (1 - level) / 2
	loIdx := int(alpha * float64(len(vals)))
	hiIdx := int((1 - alpha) * float64(len(vals)))
	if hiIdx >= len(vals) {
		hiIdx = len(vals) - 1
	}
	return vals[loIdx], vals[hiIdx], nil
}
