package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPSIIdenticalIsZero(t *testing.T) {
	h := []float64{5, 10, 20, 40, 20, 5}
	psi, err := PSI(h, h)
	if err != nil {
		t.Fatal(err)
	}
	if psi != 0 {
		t.Fatalf("PSI(h, h) = %v, want 0", psi)
	}
}

func TestPSIGrowsWithShift(t *testing.T) {
	ref := []float64{0.25, 0.25, 0.25, 0.25}
	small := []float64{0.30, 0.25, 0.25, 0.20}
	big := []float64{0.70, 0.10, 0.10, 0.10}
	p1, err := PSI(ref, small)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := PSI(ref, big)
	if err != nil {
		t.Fatal(err)
	}
	if !(p1 > 0 && p2 > p1) {
		t.Fatalf("PSI must grow with the shift: small=%v big=%v", p1, p2)
	}
}

func TestPSIEmptyBinStaysFinite(t *testing.T) {
	ref := []float64{10, 10, 10, 0}
	cur := []float64{0, 0, 0, 30}
	psi, err := PSI(ref, cur)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(psi, 0) || math.IsNaN(psi) {
		t.Fatalf("floored PSI must stay finite, got %v", psi)
	}
	if psi < 1 {
		t.Fatalf("disjoint histograms must read as a major shift, got %v", psi)
	}
}

func TestPSIScaleInvariant(t *testing.T) {
	ref := []float64{3, 9, 6, 2}
	cur := []float64{8, 2, 4, 6}
	a, err := PSI(ref, cur)
	if err != nil {
		t.Fatal(err)
	}
	scaled := make([]float64, len(cur))
	for i, v := range cur {
		scaled[i] = 17 * v
	}
	b, err := PSI(ref, scaled)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-b) > 1e-12 {
		t.Fatalf("PSI must normalize counts: %v vs %v", a, b)
	}
}

func TestKSIdenticalAndDisjoint(t *testing.T) {
	h := []float64{1, 2, 3, 4}
	ks, err := KSFromHistograms(h, h)
	if err != nil {
		t.Fatal(err)
	}
	if ks != 0 {
		t.Fatalf("KS(h, h) = %v, want 0", ks)
	}
	ks, err = KSFromHistograms([]float64{1, 0}, []float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if ks != 1 {
		t.Fatalf("KS of disjoint histograms = %v, want 1", ks)
	}
}

func TestTotalVariationBounds(t *testing.T) {
	if tv, err := TotalVariation([]float64{1, 0, 0}, []float64{0, 0, 1}); err != nil || tv != 1 {
		t.Fatalf("TV of disjoint = %v (%v), want 1", tv, err)
	}
	if tv, err := TotalVariation([]float64{2, 2}, []float64{5, 5}); err != nil || tv != 0 {
		t.Fatalf("TV of proportional = %v (%v), want 0", tv, err)
	}
}

func TestDriftErrorPaths(t *testing.T) {
	if _, err := PSI(nil, nil); err == nil {
		t.Fatal("empty histograms must error")
	}
	if _, err := PSI([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("mismatched bins must error")
	}
	if _, err := PSI([]float64{1, 1}, []float64{0, 0}); err == nil {
		t.Fatal("zero-mass current must error")
	}
	if _, err := KSFromHistograms([]float64{-1, 2}, []float64{1, 1}); err == nil {
		t.Fatal("negative mass must error")
	}
	if _, err := TotalVariation([]float64{math.NaN(), 1}, []float64{1, 1}); err == nil {
		t.Fatal("NaN mass must error")
	}
}

// Property: all three statistics are non-negative, KS and TV stay in
// [0, 1], and every one of them is exactly 0 on identical inputs.
func TestDriftStatisticProperties(t *testing.T) {
	f := func(raw [8]uint8, raw2 [8]uint8) bool {
		ref := make([]float64, 8)
		cur := make([]float64, 8)
		for i := range ref {
			ref[i] = float64(raw[i])
			cur[i] = float64(raw2[i])
		}
		ref[0]++ // guarantee mass on both sides
		cur[0]++
		psi, err := PSI(ref, cur)
		if err != nil || psi < 0 {
			return false
		}
		ks, err := KSFromHistograms(ref, cur)
		if err != nil || ks < 0 || ks > 1 {
			return false
		}
		tv, err := TotalVariation(ref, cur)
		if err != nil || tv < 0 || tv > 1 {
			return false
		}
		// KS lower-bounds nothing here, but TV upper-bounds KS on
		// shared bins: |CDF difference| ≤ Σ|p−q|/2·2.
		self, err := PSI(ref, ref)
		return err == nil && self == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
