package wire

import (
	"errors"
	"testing"

	"targad/internal/dataset"
)

// FuzzDecodeFrame drives arbitrary bytes through every decoder in the
// package. The contract under fuzz: no decoder may panic, and every
// rejection must carry exactly one typed sentinel from the taxonomy.
func FuzzDecodeFrame(f *testing.F) {
	// Seed corpus: one valid frame of each type, plus the prefixes and
	// corruptions the table tests pin.
	req64, err := AppendRequestF64(nil, [][]float64{{1, 2, 3}, {4, 5, 6}}, StrategyED, true)
	if err != nil {
		f.Fatal(err)
	}
	req32, err := AppendRequestF32(nil, [][]float32{{1.5, -2}}, -1, false)
	if err != nil {
		f.Fatal(err)
	}
	resp := AppendResponseHeader(nil, 3, 2, 2, RespFlags(true, true, true))
	resp = AppendScoreChunk(resp, []float64{0.5}, []dataset.Kind{1}, []float64{0.25, 0.75})
	resp = AppendScoreChunk(resp, []float64{0.125}, []dataset.Kind{0}, []float64{0.5, 0.5})
	errFrame := AppendError(nil, 400, "input dim mismatch")

	f.Add(req64)
	f.Add(req32)
	f.Add(resp)
	f.Add(errFrame)
	f.Add([]byte{})
	f.Add([]byte("TGAD"))
	f.Add(req64[:RequestHeaderSize])
	f.Add(req64[:len(req64)-1])
	f.Add(append(append([]byte(nil), req32...), 0xFF))
	f.Add([]byte{'T', 'G', 'A', 'D', 2, 1, 0, 0})
	f.Add([]byte{'T', 'G', 'A', 'D', 1, 9, 0, 0})

	typed := func(err error) bool {
		return errors.Is(err, ErrTruncated) || errors.Is(err, ErrBadMagic) ||
			errors.Is(err, ErrVersion) || errors.Is(err, ErrFrameType) ||
			errors.Is(err, ErrMalformed) || errors.Is(err, ErrTooLarge)
	}

	f.Fuzz(func(t *testing.T, b []byte) {
		if _, _, err := DecodeRequestFrame(b); err != nil && !typed(err) {
			t.Fatalf("DecodeRequestFrame: untyped error %v", err)
		}
		if _, err := DecodeResponse(b); err != nil && !typed(err) {
			t.Fatalf("DecodeResponse: untyped error %v", err)
		}
		if _, _, err := DecodeErrorFrame(b); err != nil && !typed(err) {
			t.Fatalf("DecodeErrorFrame: untyped error %v", err)
		}
		if _, err := FrameType(b); err != nil && !typed(err) {
			t.Fatalf("FrameType: untyped error %v", err)
		}
	})
}
