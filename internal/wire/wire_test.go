package wire

import (
	"encoding/binary"
	"errors"
	"math"
	"testing"

	"targad/internal/dataset"
	"targad/internal/mat"
)

func validF64Frame(t *testing.T, rows, features int, strategy int, probs bool) []byte {
	t.Helper()
	data := make([][]float64, rows)
	for i := range data {
		data[i] = make([]float64, features)
		for j := range data[i] {
			data[i][j] = float64(i*features+j) / 7
		}
	}
	b, err := AppendRequestF64(nil, data, strategy, probs)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestRequestRoundTripF64(t *testing.T) {
	frame := validF64Frame(t, 3, 5, StrategyED, true)
	h, err := ParseRequestHeader(frame)
	if err != nil {
		t.Fatal(err)
	}
	if h.F32 || !h.WantProbs || !h.HasStrategy || h.Strategy != StrategyED || h.Rows != 3 || h.Features != 5 {
		t.Fatalf("header = %+v", h)
	}
	if got, want := h.FrameSize(), int64(len(frame)); got != want {
		t.Fatalf("FrameSize = %d, frame is %d bytes", got, want)
	}
	x, err := DecodePayloadF64(h, frame[RequestHeaderSize:], nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 5; j++ {
			if x.At(i, j) != float64(i*5+j)/7 {
				t.Fatalf("payload[%d][%d] = %v", i, j, x.At(i, j))
			}
		}
	}
	// Ensure-reuse decodes into the same backing array.
	prev := &x.Data[0]
	if x, err = DecodePayloadF64(h, frame[RequestHeaderSize:], x); err != nil {
		t.Fatal(err)
	}
	if prev != &x.Data[0] {
		t.Fatal("recycled decode reallocated the matrix")
	}
}

func TestRequestRoundTripF32(t *testing.T) {
	rows := [][]float32{{1.5, -2.25}, {0.125, 3e7}}
	frame, err := AppendRequestF32(nil, rows, -1, false)
	if err != nil {
		t.Fatal(err)
	}
	h, err := ParseRequestHeader(frame)
	if err != nil {
		t.Fatal(err)
	}
	if !h.F32 || h.HasStrategy || h.WantProbs || h.Rows != 2 || h.Features != 2 {
		t.Fatalf("header = %+v", h)
	}
	x32, err := DecodePayloadF32(h, frame[RequestHeaderSize:], nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rows {
		for j := range rows[i] {
			if x32.Row(i)[j] != rows[i][j] {
				t.Fatalf("f32 payload[%d][%d] = %v, want %v", i, j, x32.Row(i)[j], rows[i][j])
			}
		}
	}
	// Widening decode agrees with float64(float32) exactly.
	x, err := DecodePayloadF32To64(h, frame[RequestHeaderSize:], nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rows {
		for j := range rows[i] {
			if x.At(i, j) != float64(rows[i][j]) {
				t.Fatalf("widened payload[%d][%d] = %v", i, j, x.At(i, j))
			}
		}
	}
}

// TestRequestHeaderErrors walks the malformed-prefix taxonomy: every
// corruption maps to its typed sentinel, never a panic.
func TestRequestHeaderErrors(t *testing.T) {
	base := validF64Frame(t, 2, 3, StrategyMSP, false)
	mut := func(fn func(b []byte)) []byte {
		b := append([]byte(nil), base...)
		fn(b)
		return b
	}
	cases := []struct {
		name  string
		frame []byte
		want  error
	}{
		{"empty", nil, ErrTruncated},
		{"short prefix", base[:7], ErrTruncated},
		{"short header", base[:12], ErrTruncated},
		{"bad magic", mut(func(b []byte) { b[0] = 'X' }), ErrBadMagic},
		{"bad version", mut(func(b []byte) { b[4] = 9 }), ErrVersion},
		{"bad type", mut(func(b []byte) { b[5] = 77 }), ErrFrameType},
		{"response type", mut(func(b []byte) { b[5] = TypeResponse }), ErrFrameType},
		{"unknown flags", mut(func(b []byte) { b[6] = 0x80 }), ErrMalformed},
		{"bad strategy", mut(func(b []byte) { b[6] = FlagReqStrategy; b[7] = 3 }), ErrMalformed},
		{"stray strategy byte", mut(func(b []byte) { b[6] = 0; b[7] = 1 }), ErrMalformed},
		{"zero rows", mut(func(b []byte) { binary.LittleEndian.PutUint32(b[8:], 0) }), ErrMalformed},
		{"zero features", mut(func(b []byte) { binary.LittleEndian.PutUint32(b[12:], 0) }), ErrMalformed},
		{"huge rows", mut(func(b []byte) { binary.LittleEndian.PutUint32(b[8:], MaxRows+1) }), ErrTooLarge},
		{"huge features", mut(func(b []byte) { binary.LittleEndian.PutUint32(b[12:], MaxFeatures+1) }), ErrTooLarge},
	}
	for _, tc := range cases {
		if _, err := ParseRequestHeader(tc.frame); !errors.Is(err, tc.want) {
			t.Fatalf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}

	h, err := ParseRequestHeader(base)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodePayloadF64(h, base[RequestHeaderSize:len(base)-1], nil); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated payload: %v", err)
	}
	if _, err := DecodePayloadF64(h, append(append([]byte(nil), base[RequestHeaderSize:]...), 0), nil); !errors.Is(err, ErrMalformed) {
		t.Fatalf("trailing payload bytes: %v", err)
	}
	if _, err := DecodePayloadF32(h, base[RequestHeaderSize:], nil); !errors.Is(err, ErrMalformed) {
		t.Fatalf("f64 payload through the f32 decoder: %v", err)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	scores := []float64{0.25, 0.5, 1e-300}
	kinds := []dataset.Kind{dataset.KindNormal, dataset.KindTarget, dataset.KindNonTarget}
	probs := []float64{
		0.1, 0.9,
		0.8, 0.2,
		0.5, 0.5,
	}
	b := AppendResponseHeader(nil, 42, 3, 2, RespFlags(true, true, false))
	b = AppendScoreChunk(b, scores, kinds, probs)
	r, err := DecodeResponse(b)
	if err != nil {
		t.Fatal(err)
	}
	if r.ModelVersion != 42 || r.Chunks != 1 || r.Streamed {
		t.Fatalf("response = %+v", r)
	}
	for i, s := range scores {
		if r.Scores[i] != s || r.Decisions[i] != kinds[i] {
			t.Fatalf("row %d: %v %v", i, r.Scores[i], r.Decisions[i])
		}
	}
	if r.Probs.Rows != 3 || r.Probs.Cols != 2 {
		t.Fatalf("probs %dx%d", r.Probs.Rows, r.Probs.Cols)
	}
	for i, v := range probs {
		if r.Probs.Data[i] != v {
			t.Fatalf("probs[%d] = %v", i, r.Probs.Data[i])
		}
	}
}

func TestResponseChunked(t *testing.T) {
	const total = 5
	scores := []float64{1, 2, 3, 4, 5}
	kinds := []dataset.Kind{0, 1, 2, 1, 0}
	b := AppendResponseHeader(nil, 7, total, 0, RespFlags(true, false, true))
	b = AppendScoreChunk(b, scores[:2], kinds[:2], nil)
	b = AppendScoreChunk(b, scores[2:4], kinds[2:4], nil)
	b = AppendScoreChunk(b, scores[4:], kinds[4:], nil)
	r, err := DecodeResponse(b)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Streamed || r.Chunks != 3 || len(r.Scores) != total {
		t.Fatalf("response = %+v", r)
	}
	for i := range scores {
		if r.Scores[i] != scores[i] || r.Decisions[i] != kinds[i] {
			t.Fatalf("row %d mismatch", i)
		}
	}
	if r.Probs != nil {
		t.Fatal("probs decoded without the flag")
	}
}

func TestResponseErrors(t *testing.T) {
	good := AppendResponseHeader(nil, 1, 2, 0, RespFlags(false, false, false))
	good = AppendScoreChunk(good, []float64{1, 2}, nil, nil)
	if _, err := DecodeResponse(good); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		mut  func(b []byte) []byte
		want error
	}{
		{"short header", func(b []byte) []byte { return b[:20] }, ErrTruncated},
		{"short chunk", func(b []byte) []byte { return b[:len(b)-3] }, ErrTruncated},
		{"trailing bytes", func(b []byte) []byte { return append(b, 0) }, ErrMalformed},
		{"bad flags", func(b []byte) []byte { b[6] = 0x40; return b }, ErrMalformed},
		{"classes without probs", func(b []byte) []byte { binary.LittleEndian.PutUint32(b[20:], 3); return b }, ErrMalformed},
		{"oversized chunk", func(b []byte) []byte { binary.LittleEndian.PutUint32(b[24:], 9); return b }, ErrMalformed},
		{"zero rows", func(b []byte) []byte { binary.LittleEndian.PutUint32(b[16:], 0); return b }, ErrMalformed},
	}
	for _, tc := range cases {
		b := tc.mut(append([]byte(nil), good...))
		if _, err := DecodeResponse(b); !errors.Is(err, tc.want) {
			t.Fatalf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestErrorFrameRoundTrip(t *testing.T) {
	b := AppendError(nil, 413, "request exceeds -max-request-bytes")
	typ, err := FrameType(b)
	if err != nil || typ != TypeError {
		t.Fatalf("FrameType = %d, %v", typ, err)
	}
	code, msg, err := DecodeErrorFrame(b)
	if err != nil {
		t.Fatal(err)
	}
	if code != 413 || msg != "request exceeds -max-request-bytes" {
		t.Fatalf("decoded %d %q", code, msg)
	}
	if _, _, err := DecodeErrorFrame(b[:len(b)-2]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated message: %v", err)
	}
}

// TestScoreBitsSurviveRoundTrip pins the bit-for-bit score contract:
// every float64 pattern, including negative zero and subnormals,
// crosses the wire unchanged.
func TestScoreBitsSurviveRoundTrip(t *testing.T) {
	scores := []float64{0, math.Copysign(0, -1), 1.0 / 3, 5e-324, math.MaxFloat64, math.SmallestNonzeroFloat64}
	b := AppendResponseHeader(nil, 1, len(scores), 0, 0)
	b = AppendScoreChunk(b, scores, nil, nil)
	r, err := DecodeResponse(b)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range scores {
		if math.Float64bits(r.Scores[i]) != math.Float64bits(s) {
			t.Fatalf("score %d: bits %x != %x", i, math.Float64bits(r.Scores[i]), math.Float64bits(s))
		}
	}
}

func TestAppendRequestValidation(t *testing.T) {
	if _, err := AppendRequestF64(nil, nil, -1, false); err == nil {
		t.Fatal("empty request must not encode")
	}
	if _, err := AppendRequestF64(nil, [][]float64{{1, 2}, {1}}, -1, false); err == nil {
		t.Fatal("ragged rows must not encode")
	}
	if _, err := AppendRequestF64(nil, [][]float64{{1}}, 3, false); err == nil {
		t.Fatal("out-of-range strategy must not encode")
	}
	x := mat.New(2, 2)
	if _, err := AppendRequestMatrix(nil, x, StrategyES, true); err != nil {
		t.Fatal(err)
	}
}

func TestParseRequestFrameSize(t *testing.T) {
	rows := [][]float64{{1, 2, 3}, {4, 5, 6}}
	frame, err := AppendRequestF64(nil, rows, -1, false)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseRequestFrameSize(frame[:RequestHeaderSize])
	if err != nil {
		t.Fatal(err)
	}
	if got != int64(len(frame)) {
		t.Fatalf("ParseRequestFrameSize = %d, want the encoded frame length %d", got, len(frame))
	}

	f32, err := AppendRequestF32(nil, [][]float32{{1, 2}}, StrategyED, true)
	if err != nil {
		t.Fatal(err)
	}
	got, err = ParseRequestFrameSize(f32[:RequestHeaderSize])
	if err != nil {
		t.Fatal(err)
	}
	if got != int64(len(f32)) {
		t.Fatalf("f32 ParseRequestFrameSize = %d, want %d", got, len(f32))
	}

	if _, err := ParseRequestFrameSize(frame[:RequestHeaderSize-1]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short header error = %v, want ErrTruncated", err)
	}
	bad := append([]byte(nil), frame[:RequestHeaderSize]...)
	bad[5] = TypeResponse
	if _, err := ParseRequestFrameSize(bad); !errors.Is(err, ErrFrameType) {
		t.Fatalf("non-request frame error = %v, want ErrFrameType", err)
	}
}
