package wire

import (
	"errors"
	"math"

	"targad/internal/dataset"
	"targad/internal/mat"
)

// Encoding helpers. The Append* functions grow dst in place and return
// it — callers that recycle dst across requests (the serving arenas)
// encode with zero steady-state allocations.

func appendPrefix(dst []byte, frameType, flags, b7 byte) []byte {
	return append(dst, Magic[0], Magic[1], Magic[2], Magic[3], Version, frameType, flags, b7)
}

func appendU32(dst []byte, v uint32) []byte {
	return append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendU64(dst []byte, v uint64) []byte {
	return append(dst,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// AppendRequestF64 appends one f64 score-request frame carrying rows.
// strategy < 0 leaves the strategy to the server default; 0/1/2 name
// MSP/ES/ED explicitly.
func AppendRequestF64(dst []byte, rows [][]float64, strategy int, probs bool) ([]byte, error) {
	h, err := requestHeader(len(rows), rowWidth64(rows), strategy, probs, false)
	if err != nil {
		return nil, err
	}
	dst = h.appendHeader(dst)
	for _, row := range rows {
		if len(row) != h.Features {
			return nil, errors.New("wire: ragged request rows")
		}
		for _, v := range row {
			dst = appendU64(dst, math.Float64bits(v))
		}
	}
	return dst, nil
}

// AppendRequestF32 appends one f32 score-request frame carrying rows.
func AppendRequestF32(dst []byte, rows [][]float32, strategy int, probs bool) ([]byte, error) {
	features := 0
	if len(rows) > 0 {
		features = len(rows[0])
	}
	h, err := requestHeader(len(rows), features, strategy, probs, true)
	if err != nil {
		return nil, err
	}
	dst = h.appendHeader(dst)
	for _, row := range rows {
		if len(row) != h.Features {
			return nil, errors.New("wire: ragged request rows")
		}
		for _, v := range row {
			dst = appendU32(dst, math.Float32bits(v))
		}
	}
	return dst, nil
}

// AppendRequestMatrix appends one f64 score-request frame carrying the
// matrix rows, the zero-allocation twin of AppendRequestF64 for
// callers that already hold a matrix.
func AppendRequestMatrix(dst []byte, x *mat.Matrix, strategy int, probs bool) ([]byte, error) {
	h, err := requestHeader(x.Rows, x.Cols, strategy, probs, false)
	if err != nil {
		return nil, err
	}
	dst = h.appendHeader(dst)
	for _, v := range x.Data {
		dst = appendU64(dst, math.Float64bits(v))
	}
	return dst, nil
}

func rowWidth64(rows [][]float64) int {
	if len(rows) == 0 {
		return 0
	}
	return len(rows[0])
}

func requestHeader(rows, features, strategy int, probs, f32 bool) (Request, error) {
	var r Request
	if rows <= 0 || features <= 0 {
		return r, errors.New("wire: request needs at least one row and one feature")
	}
	if rows > MaxRows || features > MaxFeatures {
		return r, errors.New("wire: request exceeds frame size limits")
	}
	if strategy > StrategyED {
		return r, errors.New("wire: strategy byte out of range")
	}
	r.Rows, r.Features = rows, features
	r.F32 = f32
	r.WantProbs = probs
	if strategy >= 0 {
		r.HasStrategy = true
		r.Strategy = byte(strategy)
	}
	return r, nil
}

func (r Request) appendHeader(dst []byte) []byte {
	var flags byte
	if r.F32 {
		flags |= FlagReqF32
	}
	if r.WantProbs {
		flags |= FlagReqProbs
	}
	if r.HasStrategy {
		flags |= FlagReqStrategy
	}
	dst = appendPrefix(dst, TypeRequest, flags, r.Strategy)
	dst = appendU32(dst, uint32(r.Rows))
	return appendU32(dst, uint32(r.Features))
}

// RespFlags composes the response flag byte from the result shape.
func RespFlags(decisions, probs, streamed bool) byte {
	var f byte
	if decisions {
		f |= FlagRespDecisions
	}
	if probs {
		f |= FlagRespProbs
	}
	if streamed {
		f |= FlagRespStreamed
	}
	return f
}

// AppendResponseHeader appends the 24-byte score-response header.
// classes must be 0 unless flags carries FlagRespProbs.
func AppendResponseHeader(dst []byte, modelVersion int64, rows, classes int, flags byte) []byte {
	dst = appendPrefix(dst, TypeResponse, flags, 0)
	dst = appendU64(dst, uint64(modelVersion))
	dst = appendU32(dst, uint32(rows))
	return appendU32(dst, uint32(classes))
}

// AppendScoreChunk appends one response chunk: the scores, then — when
// non-nil — the matching decision bytes and the flat row-major
// probability block (len(scores)*classes values). The presence of
// kinds and probs must agree with the header's flag bits for every
// chunk of a response.
func AppendScoreChunk(dst []byte, scores []float64, kinds []dataset.Kind, probs []float64) []byte {
	dst = appendU32(dst, uint32(len(scores)))
	for _, v := range scores {
		dst = appendU64(dst, math.Float64bits(v))
	}
	if kinds != nil {
		for _, k := range kinds {
			dst = append(dst, byte(k))
		}
	}
	if probs != nil {
		for _, v := range probs {
			dst = appendU64(dst, math.Float64bits(v))
		}
	}
	return dst
}

// AppendError appends one error frame with an HTTP-semantics status
// code and a message (truncated to MaxErrorLen).
func AppendError(dst []byte, code int, msg string) []byte {
	if len(msg) > MaxErrorLen {
		msg = msg[:MaxErrorLen]
	}
	dst = appendPrefix(dst, TypeError, 0, 0)
	dst = append(dst, byte(code), byte(code>>8), 0, 0)
	dst = appendU32(dst, uint32(len(msg)))
	return append(dst, msg...)
}
