package wire

import (
	"encoding/binary"
	"fmt"
	"math"

	"targad/internal/dataset"
	"targad/internal/mat"
)

// ParseRequestHeader validates the first RequestHeaderSize bytes of a
// request frame and returns the parsed header. It allocates nothing on
// the happy path; every malformed prefix returns a typed error.
func ParseRequestHeader(b []byte) (Request, error) {
	var r Request
	if len(b) < RequestHeaderSize {
		return r, fmt.Errorf("%w: %d-byte request header, want %d", ErrTruncated, len(b), RequestHeaderSize)
	}
	t, err := checkPrefix(b)
	if err != nil {
		return r, err
	}
	if t != TypeRequest {
		return r, fmt.Errorf("%w: type %d, want request (%d)", ErrFrameType, t, TypeRequest)
	}
	flags := b[6]
	if flags&^byte(FlagReqF32|FlagReqProbs|FlagReqStrategy) != 0 {
		return r, fmt.Errorf("%w: unknown request flag bits 0x%02x", ErrMalformed, flags)
	}
	r.F32 = flags&FlagReqF32 != 0
	r.WantProbs = flags&FlagReqProbs != 0
	r.HasStrategy = flags&FlagReqStrategy != 0
	r.Strategy = b[7]
	if r.HasStrategy {
		if r.Strategy > StrategyED {
			return r, fmt.Errorf("%w: strategy byte %d (want 0 MSP, 1 ES, 2 ED)", ErrMalformed, r.Strategy)
		}
	} else if r.Strategy != 0 {
		return r, fmt.Errorf("%w: nonzero strategy byte without the strategy flag", ErrMalformed)
	}
	rows := binary.LittleEndian.Uint32(b[8:12])
	features := binary.LittleEndian.Uint32(b[12:16])
	if rows == 0 || features == 0 {
		return r, fmt.Errorf("%w: %dx%d feature block", ErrMalformed, rows, features)
	}
	if rows > MaxRows || features > MaxFeatures {
		return r, fmt.Errorf("%w: %dx%d feature block (limits %dx%d)", ErrTooLarge, rows, features, MaxRows, MaxFeatures)
	}
	r.Rows, r.Features = int(rows), int(features)
	return r, nil
}

// ParseRequestFrameSize validates a request frame's leading
// RequestHeaderSize bytes and returns the total frame length (header +
// payload) the header announces, without touching the payload. Proxies
// that forward frames opaquely use it to size-check and buffer a
// request from the header alone; the parse limits guarantee the result
// cannot overflow.
func ParseRequestFrameSize(hdr []byte) (int64, error) {
	h, err := ParseRequestHeader(hdr)
	if err != nil {
		return 0, err
	}
	return h.FrameSize(), nil
}

// DecodePayloadF64 decodes an f64 feature block into dst (grown via
// mat.Ensure, nil allocates) and returns it. payload must be exactly
// the block the header announced. Steady-state calls over a recycled
// dst allocate nothing.
func DecodePayloadF64(h Request, payload []byte, dst *mat.Matrix) (*mat.Matrix, error) {
	if h.F32 {
		return nil, fmt.Errorf("%w: f32 payload decoded as f64", ErrMalformed)
	}
	if err := checkPayloadLen(h, len(payload)); err != nil {
		return nil, err
	}
	dst = mat.Ensure(dst, h.Rows, h.Features)
	for i := range dst.Data {
		dst.Data[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[i*8:]))
	}
	return dst, nil
}

// DecodePayloadF32 decodes an f32 feature block into dst without
// widening — the rows go straight into the float32 inference path.
func DecodePayloadF32(h Request, payload []byte, dst *mat.Matrix32) (*mat.Matrix32, error) {
	if !h.F32 {
		return nil, fmt.Errorf("%w: f64 payload decoded as f32", ErrMalformed)
	}
	if err := checkPayloadLen(h, len(payload)); err != nil {
		return nil, err
	}
	dst = mat.Ensure32(dst, h.Rows, h.Features)
	for i := range dst.Data {
		dst.Data[i] = math.Float32frombits(binary.LittleEndian.Uint32(payload[i*4:]))
	}
	return dst, nil
}

// DecodePayloadF32To64 widens an f32 feature block into an f64 matrix,
// for servers whose inference path is float64 (widening is exact, so
// the scores match an f64 frame carrying the same values).
func DecodePayloadF32To64(h Request, payload []byte, dst *mat.Matrix) (*mat.Matrix, error) {
	if !h.F32 {
		return nil, fmt.Errorf("%w: f64 payload decoded as f32", ErrMalformed)
	}
	if err := checkPayloadLen(h, len(payload)); err != nil {
		return nil, err
	}
	dst = mat.Ensure(dst, h.Rows, h.Features)
	for i := range dst.Data {
		dst.Data[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(payload[i*4:])))
	}
	return dst, nil
}

func checkPayloadLen(h Request, got int) error {
	want := h.PayloadSize()
	switch {
	case int64(got) < want:
		return fmt.Errorf("%w: %d payload bytes, header announced %d", ErrTruncated, got, want)
	case int64(got) > want:
		return fmt.Errorf("%w: %d trailing bytes past the feature block", ErrMalformed, int64(got)-want)
	}
	return nil
}

// DecodeRequestFrame decodes one whole request frame (header +
// payload) into a freshly allocated f64 matrix, widening f32 payloads.
// It is the convenience/reference decoder used by tests and the
// fuzzer; the serving path uses the split header/payload calls over
// pooled buffers instead.
func DecodeRequestFrame(frame []byte) (Request, *mat.Matrix, error) {
	h, err := ParseRequestHeader(frame)
	if err != nil {
		return h, nil, err
	}
	payload := frame[RequestHeaderSize:]
	var x *mat.Matrix
	if h.F32 {
		x, err = DecodePayloadF32To64(h, payload, nil)
	} else {
		x, err = DecodePayloadF64(h, payload, nil)
	}
	return h, x, err
}

// Response is a decoded score response, with chunked frames
// reassembled.
type Response struct {
	ModelVersion int64
	// Scores holds S^tar per row, bit-for-bit the served float64.
	Scores []float64
	// Decisions holds the three-way call per row, nil when the
	// response carried none.
	Decisions []dataset.Kind
	// Probs holds the per-class probability rows when requested, nil
	// otherwise.
	Probs *mat.Matrix
	// Streamed reports the FlagRespStreamed bit; Chunks counts the
	// chunks the response arrived in.
	Streamed bool
	Chunks   int
}

// DecodeResponse decodes a complete score-response frame, walking its
// chunk sequence until the announced row count is covered.
func DecodeResponse(b []byte) (*Response, error) {
	if len(b) < ResponseHeaderSize {
		return nil, fmt.Errorf("%w: %d-byte response header, want %d", ErrTruncated, len(b), ResponseHeaderSize)
	}
	t, err := checkPrefix(b)
	if err != nil {
		return nil, err
	}
	if t != TypeResponse {
		return nil, fmt.Errorf("%w: type %d, want response (%d)", ErrFrameType, t, TypeResponse)
	}
	flags := b[6]
	if flags&^byte(FlagRespDecisions|FlagRespProbs|FlagRespStreamed) != 0 {
		return nil, fmt.Errorf("%w: unknown response flag bits 0x%02x", ErrMalformed, flags)
	}
	if b[7] != 0 {
		return nil, fmt.Errorf("%w: nonzero reserved byte", ErrMalformed)
	}
	rows := binary.LittleEndian.Uint32(b[16:20])
	classes := binary.LittleEndian.Uint32(b[20:24])
	if rows == 0 || rows > MaxRows {
		return nil, fmt.Errorf("%w: %d response rows", ErrMalformed, rows)
	}
	hasDec := flags&FlagRespDecisions != 0
	hasProbs := flags&FlagRespProbs != 0
	if hasProbs && (classes == 0 || classes > MaxClasses) {
		return nil, fmt.Errorf("%w: %d probability classes", ErrMalformed, classes)
	}
	if !hasProbs && classes != 0 {
		return nil, fmt.Errorf("%w: class count without the probability flag", ErrMalformed)
	}

	r := &Response{
		ModelVersion: int64(binary.LittleEndian.Uint64(b[8:16])),
		Streamed:     flags&FlagRespStreamed != 0,
	}
	if hasProbs {
		r.Probs = &mat.Matrix{Cols: int(classes)}
	}
	body := b[ResponseHeaderSize:]
	total := int(rows)
	for len(r.Scores) < total {
		if len(body) < 4 {
			return nil, fmt.Errorf("%w: short chunk prefix", ErrTruncated)
		}
		n := int(binary.LittleEndian.Uint32(body))
		body = body[4:]
		if n == 0 || n > total-len(r.Scores) {
			return nil, fmt.Errorf("%w: chunk of %d rows with %d remaining", ErrMalformed, n, total-len(r.Scores))
		}
		need := n * 8
		if hasDec {
			need += n
		}
		if hasProbs {
			need += n * int(classes) * 8
		}
		if len(body) < need {
			return nil, fmt.Errorf("%w: %d chunk bytes, want %d", ErrTruncated, len(body), need)
		}
		for i := 0; i < n; i++ {
			r.Scores = append(r.Scores, math.Float64frombits(binary.LittleEndian.Uint64(body[i*8:])))
		}
		body = body[n*8:]
		if hasDec {
			for i := 0; i < n; i++ {
				d := body[i]
				if d > 2 {
					return nil, fmt.Errorf("%w: decision byte %d", ErrMalformed, d)
				}
				r.Decisions = append(r.Decisions, dataset.Kind(d))
			}
			body = body[n:]
		}
		if hasProbs {
			for i := 0; i < n*int(classes); i++ {
				r.Probs.Data = append(r.Probs.Data, math.Float64frombits(binary.LittleEndian.Uint64(body[i*8:])))
			}
			body = body[n*int(classes)*8:]
		}
		r.Chunks++
	}
	if len(body) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes past the last chunk", ErrMalformed, len(body))
	}
	if r.Probs != nil {
		r.Probs.Rows = total
	}
	return r, nil
}

// DecodeErrorFrame decodes an error frame into its status code and
// message.
func DecodeErrorFrame(b []byte) (code int, msg string, err error) {
	if len(b) < ErrorHeaderSize {
		return 0, "", fmt.Errorf("%w: %d-byte error header, want %d", ErrTruncated, len(b), ErrorHeaderSize)
	}
	t, err := checkPrefix(b)
	if err != nil {
		return 0, "", err
	}
	if t != TypeError {
		return 0, "", fmt.Errorf("%w: type %d, want error (%d)", ErrFrameType, t, TypeError)
	}
	if b[6] != 0 || b[7] != 0 || b[10] != 0 || b[11] != 0 {
		return 0, "", fmt.Errorf("%w: nonzero reserved bytes", ErrMalformed)
	}
	code = int(binary.LittleEndian.Uint16(b[8:10]))
	n := binary.LittleEndian.Uint32(b[12:16])
	if n > MaxErrorLen {
		return 0, "", fmt.Errorf("%w: %d-byte error message", ErrTooLarge, n)
	}
	if len(b) != ErrorHeaderSize+int(n) {
		return 0, "", fmt.Errorf("%w: %d message bytes, header announced %d", ErrTruncated, len(b)-ErrorHeaderSize, n)
	}
	return code, string(b[ErrorHeaderSize:]), nil
}
