// Package wire defines the binary scoring protocol of the serving
// layer (DESIGN.md §12): versioned, length-prefixed, little-endian
// columnar frames that carry feature rows to POST /score and S^tar
// scores, three-way decisions, and per-class probabilities back, with
// near-zero per-request garbage — the JSON path costs ~150 allocs and
// ~18 KB per request, all marshalling; a frame decodes into pooled
// arena buffers and encodes from them.
//
// Every frame starts with the same 8-byte prefix:
//
//	offset  size  field
//	0       4     magic "TGAD"
//	4       1     version (1)
//	5       1     frame type (1 request, 2 response, 3 error)
//	6       1     type-specific flags
//	7       1     type-specific byte (request: strategy; otherwise 0)
//
// Score request (type 1), header 16 bytes:
//
//	8       4     uint32 row count
//	12      4     uint32 feature count
//	16      ...   row-major feature block, rows*features elements,
//	              little-endian float64 (8 B) or — with FlagReqF32 —
//	              float32 (4 B)
//
// Request flags: FlagReqF32 narrows the payload element type,
// FlagReqProbs requests per-class probabilities, FlagReqStrategy marks
// byte 7 as an explicit identification strategy (0 MSP, 1 ES, 2 ED;
// without the flag byte 7 must be 0 and the server default applies).
//
// Score response (type 2), header 24 bytes:
//
//	8       8     int64 model version
//	16      4     uint32 total row count
//	20      4     uint32 class count (0 unless FlagRespProbs)
//	24      ...   one or more chunks
//
// Each chunk is:
//
//	0       4     uint32 chunk row count n (>= 1)
//	4       n*8   float64 S^tar scores
//	...     n     decision bytes (only with FlagRespDecisions;
//	              0 normal, 1 target, 2 non-target)
//	...     n*c*8 float64 probability rows (only with FlagRespProbs)
//
// Chunks cover the total row count exactly; FlagRespStreamed marks a
// response the server split across several chunks (large batches are
// flushed chunk by chunk so the peak buffer stays bounded). Scores are
// always float64: the served score values are float64 on both
// precision paths, so the binary response is bit-for-bit the value the
// JSON path would have printed.
//
// Error frame (type 3), header 16 bytes + message:
//
//	8       2     uint16 status code (HTTP semantics)
//	10      2     reserved (0)
//	12      4     uint32 message length
//	16      ...   UTF-8 message
//
// Compatibility: the version byte is bumped on any layout change, and
// decoders reject unknown versions, frame types, and flag bits with
// typed errors — a malformed or truncated frame can never panic the
// decoder (FuzzDecodeFrame pins this).
//
// Opaque pass-through (proxies): an intermediary such as
// cmd/targad-router may forward frames without decoding the payload.
// The constraints that make this safe are part of the protocol
// contract:
//
//   - A request frame's total length is fully determined by its
//     16-byte header (ParseRequestFrameSize), so a proxy can validate
//     and bound buffering before reading the payload and must reject a
//     body that disagrees with the announced size.
//   - Frames must be forwarded byte-for-byte — never re-encoded, split
//     across requests, or coalesced — so scores routed through a proxy
//     stay bitwise-identical to a direct response, and a buffered
//     frame may be replayed verbatim on a retry to another replica.
//   - An intermediary that answers for an unreachable fleet speaks the
//     same error frame type (AppendError) a server would, so binary
//     clients parse one failure shape end to end.
package wire

import (
	"errors"
	"fmt"
)

// ContentType negotiates the binary protocol on the HTTP listener;
// requests without it fall back to JSON.
const ContentType = "application/x-targad-frame"

// Version is the frame layout version this package encodes and the
// only one it accepts.
const Version = 1

// Magic is the 4-byte frame prefix.
var Magic = [4]byte{'T', 'G', 'A', 'D'}

// Frame types (byte 5).
const (
	TypeRequest  = 1
	TypeResponse = 2
	TypeError    = 3
)

// Request flag bits (byte 6 of a request frame).
const (
	FlagReqF32      = 1 << 0 // feature block holds float32, not float64
	FlagReqProbs    = 1 << 1 // return per-class probabilities
	FlagReqStrategy = 1 << 2 // byte 7 names the identification strategy
)

// Response flag bits (byte 6 of a response frame).
const (
	FlagRespDecisions = 1 << 0 // chunks carry decision bytes
	FlagRespProbs     = 1 << 1 // chunks carry probability rows
	FlagRespStreamed  = 1 << 2 // response was flushed as multiple chunks
)

// Strategy bytes (byte 7 of a request frame with FlagReqStrategy).
// They match core.OODStrategy's values.
const (
	StrategyMSP = 0
	StrategyES  = 1
	StrategyED  = 2
)

// Header sizes.
const (
	PrefixSize         = 8
	RequestHeaderSize  = 16
	ResponseHeaderSize = 24
	ErrorHeaderSize    = 16
)

// Decode limits: a header whose claimed geometry exceeds these is
// rejected before any buffer is sized from it, so a hostile 16-byte
// frame cannot demand gigabytes.
const (
	MaxRows     = 1 << 24 // rows per request or response
	MaxFeatures = 1 << 20 // features per row
	MaxClasses  = 1 << 16 // probability columns per row
	MaxErrorLen = 1 << 16 // error message bytes
)

// StreamChunkRows is the row granularity servers use when flushing a
// large response as a chunk stream.
const StreamChunkRows = 1024

// Typed decode errors. Every way a frame can be malformed maps onto
// exactly one of these (possibly wrapped with detail); decoders return
// them instead of panicking.
var (
	// ErrTruncated reports a frame shorter than its own length
	// prefixes claim (short header, short payload, short chunk).
	ErrTruncated = errors.New("wire: truncated frame")
	// ErrBadMagic reports a frame that does not start with "TGAD".
	ErrBadMagic = errors.New("wire: bad magic")
	// ErrVersion reports a frame layout version this build does not
	// speak.
	ErrVersion = errors.New("wire: unsupported frame version")
	// ErrFrameType reports an unknown or contextually wrong frame type.
	ErrFrameType = errors.New("wire: unexpected frame type")
	// ErrMalformed reports structurally invalid contents: unknown flag
	// bits, zero geometry, bad strategy byte, nonzero reserved bytes,
	// or trailing bytes past the frame end.
	ErrMalformed = errors.New("wire: malformed frame")
	// ErrTooLarge reports a frame whose claimed geometry exceeds the
	// decode limits.
	ErrTooLarge = errors.New("wire: frame exceeds size limit")
)

// Request is a parsed score-request header.
type Request struct {
	// F32 marks the feature block as float32 elements.
	F32 bool
	// WantProbs requests per-class probability rows in the response.
	WantProbs bool
	// HasStrategy marks Strategy as client-chosen (a server must fail
	// the request if it cannot honor it, not silently downgrade).
	HasStrategy bool
	// Strategy is the identification strategy byte (StrategyMSP/ES/ED),
	// meaningful only when HasStrategy.
	Strategy byte
	// Rows and Features give the feature-block geometry.
	Rows, Features int
}

// elemSize returns the payload element width in bytes.
func (r Request) elemSize() int {
	if r.F32 {
		return 4
	}
	return 8
}

// PayloadSize returns the exact feature-block byte length the header
// announces. The parse limits guarantee it cannot overflow.
func (r Request) PayloadSize() int64 {
	return int64(r.Rows) * int64(r.Features) * int64(r.elemSize())
}

// FrameSize returns the total request frame length: header + payload.
func (r Request) FrameSize() int64 { return RequestHeaderSize + r.PayloadSize() }

// checkPrefix validates the common 8-byte prefix and returns the frame
// type byte.
func checkPrefix(b []byte) (byte, error) {
	if len(b) < PrefixSize {
		return 0, fmt.Errorf("%w: %d-byte prefix, want %d", ErrTruncated, len(b), PrefixSize)
	}
	if b[0] != Magic[0] || b[1] != Magic[1] || b[2] != Magic[2] || b[3] != Magic[3] {
		return 0, ErrBadMagic
	}
	if b[4] != Version {
		return 0, fmt.Errorf("%w: %d", ErrVersion, b[4])
	}
	t := b[5]
	if t != TypeRequest && t != TypeResponse && t != TypeError {
		return 0, fmt.Errorf("%w: %d", ErrFrameType, t)
	}
	return t, nil
}

// FrameType validates the common prefix and returns the frame type, so
// clients can tell a score response from an error frame before
// decoding either.
func FrameType(b []byte) (byte, error) { return checkPrefix(b) }
