// Package detector defines the interface every anomaly detector in
// this repository implements — TargAD and all eleven baselines — so
// the experiment harness can train and evaluate them uniformly.
package detector

import (
	"context"

	"targad/internal/dataset"
	"targad/internal/mat"
)

// Detector is a trainable target-anomaly scorer.
//
// Score must return one score per row of x, where larger means "more
// likely a target anomaly". Scores are only required to be comparable
// within a single call (AUROC/AUPRC are rank metrics).
type Detector interface {
	// Name returns a short display name used in result tables.
	Name() string
	// Fit trains the detector. Implementations must not mutate train
	// and must never read TrainSet.UnlabeledKind (ground truth is for
	// the harness only). Cancellation is cooperative: implementations
	// check ctx at epoch (or equivalent) boundaries and return an
	// error wrapping ctx.Err() promptly after it fires. A nil ctx is
	// treated as context.Background().
	Fit(ctx context.Context, train *dataset.TrainSet) error
	// Score assigns a target-anomaly score to every row of x,
	// honoring ctx the same way Fit does.
	Score(ctx context.Context, x *mat.Matrix) ([]float64, error)
}

// Factory constructs a fresh detector for one run; seed controls all
// of the detector's randomness.
type Factory func(seed int64) Detector

// ValidationAware is implemented by detectors that can exploit a
// labeled validation split for model selection — the paper tunes
// every method on such a split (Section IV-C). The harness calls
// SetValidation before Fit when a validation set exists.
type ValidationAware interface {
	SetValidation(v *dataset.EvalSet)
}
