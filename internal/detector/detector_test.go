package detector_test

import (
	"testing"

	"targad/internal/baselines/iforest"
	"targad/internal/core"
	"targad/internal/detector"
)

// TestInterfaceSatisfaction pins the contract: TargAD and a
// representative baseline implement Detector, and TargAD additionally
// implements ValidationAware.
func TestInterfaceSatisfaction(t *testing.T) {
	var d detector.Detector = core.New(core.DefaultConfig(), 1)
	if _, ok := d.(detector.ValidationAware); !ok {
		t.Fatal("TargAD must implement ValidationAware")
	}
	var f detector.Detector = iforest.New(iforest.DefaultConfig(1))
	if f.Name() != "iForest" {
		t.Fatalf("Name = %q", f.Name())
	}
	if _, ok := f.(detector.ValidationAware); ok {
		t.Fatal("iForest must not claim validation awareness")
	}
}
