// Command targad-bench regenerates the tables and figures of the
// TargAD paper's evaluation section on the synthetic dataset
// substitutes.
//
// Usage:
//
//	targad-bench -exp table2            # one experiment
//	targad-bench -exp all -runs 1       # everything, single run each
//	targad-bench -exp fig6 -scale 0.1   # bigger datasets
//	targad-bench -exp table2 -full      # paper-scale (hours)
//
// Experiments: table1 table2 table3 table4 fig3 fig4a fig4b fig4c
// fig4d fig5 fig6 fig7a fig7bc all.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"targad/internal/buildinfo"
	"targad/internal/experiments"
	"targad/internal/parallel"
)

func main() {
	var (
		exp     = flag.String("exp", "table2", "experiment to run (table1..table4, fig3..fig7bc, weight-ablation, all)")
		full    = flag.Bool("full", false, "paper-scale configuration (slow)")
		scale   = flag.Float64("scale", 0, "override dataset scale (fraction of Table I sizes)")
		runs    = flag.Int("runs", 0, "override number of repetitions")
		seed    = flag.Int64("seed", 0, "override base seed")
		models  = flag.String("models", "", "comma-separated baseline subset (TargAD always kept)")
		epochs  = flag.Int("clf-epochs", 0, "override TargAD classifier epochs")
		lr      = flag.Float64("clf-lr", 0, "override TargAD classifier learning rate")
		labeled = flag.Int("labeled", 0, "override labeled anomalies per target type")
		quiet   = flag.Bool("quiet", false, "suppress per-cell progress lines")
		outPath = flag.String("o", "", "also write rendered results to this file")
		workers = flag.Int("workers", 0, "compute worker pool size (default GOMAXPROCS; TARGAD_WORKERS env also honored)")
		timeout = flag.Duration("timeout", 0, "abort the run after this long (e.g. 30m); 0 disables")
		state   = flag.String("state", "", "directory for per-table resume state; an interrupted run continues from its last completed cell")

		showVersion = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Printf("targad-bench %s\n", buildinfo.Version())
		return
	}

	if *workers > 0 {
		parallel.SetWorkers(*workers)
	}

	rc := experiments.Fast()
	if *full {
		rc = experiments.Full()
	}
	if *scale > 0 {
		rc.Scale = *scale
	}
	if *runs > 0 {
		rc.Runs = *runs
	}
	if *seed != 0 {
		rc.Seed = *seed
	}
	if *models != "" {
		rc.ModelFilter = strings.Split(*models, ",")
	}
	if *epochs > 0 {
		rc.ClfEpochs = *epochs
	}
	if *lr > 0 {
		rc.ClfLR = *lr
	}
	if *labeled > 0 {
		rc.LabeledPerType = *labeled
	}
	rc.StateDir = *state

	// ^C/SIGTERM and -timeout cancel the run cooperatively: the
	// harness stops at the next cell or epoch boundary, and with
	// -state set the completed cells are already on disk.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var progress io.Writer = os.Stderr
	if *quiet {
		progress = nil
	}
	out := io.Writer(os.Stdout)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		out = io.MultiWriter(os.Stdout, f)
	}

	names := []string{*exp}
	if *exp == "all" {
		names = []string{"table1", "table2", "table3", "table4", "fig3", "fig4a", "fig4b", "fig4c", "fig4d", "fig5", "fig6", "fig7a", "fig7bc", "weight-ablation"}
	}
	for _, name := range names {
		start := time.Now()
		if err := run(ctx, name, rc, out, progress); err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				fmt.Fprintln(os.Stderr, "targad-bench: interrupted:", err)
				if *state != "" {
					fmt.Fprintln(os.Stderr, "targad-bench: completed cells are saved under", *state, "- rerun the same command to resume")
				}
				os.Exit(130)
			}
			fatal(err)
		}
		fmt.Fprintf(out, "\n[%s done in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}
}

// renderer is implemented by every experiment result.
type renderer interface{ Render(io.Writer) }

func run(ctx context.Context, name string, rc experiments.RunConfig, out, progress io.Writer) error {
	var (
		res renderer
		err error
	)
	switch name {
	case "table1":
		res, err = experiments.Table1(rc)
	case "table2":
		res, err = experiments.Table2(ctx, rc, progress)
	case "table3":
		res, err = experiments.Table3(ctx, rc, progress)
	case "table4":
		res, err = experiments.Table4(ctx, rc, progress)
	case "fig3":
		res, err = experiments.Fig3(ctx, rc, progress)
	case "fig4a":
		res, err = experiments.Fig4a(ctx, rc, progress)
	case "fig4b":
		res, err = experiments.Fig4b(ctx, rc, progress)
	case "fig4c":
		res, err = experiments.Fig4c(ctx, rc, progress)
	case "fig4d":
		res, err = experiments.Fig4d(ctx, rc, progress)
	case "fig5":
		res, err = experiments.Fig5(ctx, rc, progress)
	case "fig6":
		res, err = experiments.Fig6(ctx, rc, progress)
	case "fig7a":
		res, err = experiments.Fig7Eta(ctx, rc, progress)
	case "fig7bc":
		res, err = experiments.Fig7Lambda(ctx, rc, progress)
	case "weight-ablation":
		res, err = experiments.WeightAblation(ctx, rc, progress)
	default:
		return fmt.Errorf("unknown experiment %q (see -h)", name)
	}
	if err != nil {
		return err
	}
	res.Render(out)
	// Append the paper's qualitative shape checks where defined.
	switch r := res.(type) {
	case *experiments.Table2Result:
		fmt.Fprintf(out, "\nShape checks:\n%s", experiments.RenderShapes(experiments.Table2Shapes(r)))
	case *experiments.Fig4Result:
		if name == "fig4a" {
			fmt.Fprintf(out, "\nShape checks:\n%s", experiments.RenderShapes(experiments.Fig4aShapes(r)))
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "targad-bench:", err)
	os.Exit(1)
}
