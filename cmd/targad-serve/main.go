// Command targad-serve exposes a persisted TargAD model (written with
// targad -save, or core.Model.Save) as an HTTP JSON scoring service.
//
//	targad-serve -model model.gob -addr :8080
//
// Score instances (one JSON row per instance; scores are S^tar,
// decisions the 3-way normal/target/non-target call):
//
//	curl -s localhost:8080/score -d '{
//	  "instances": [[0.1, 0.7, ...], [0.9, 0.2, ...]],
//	  "strategy": "ED",
//	  "probabilities": true
//	}'
//
// Clients that want to skip JSON entirely can POST the same endpoint
// with Content-Type application/x-targad-frame: a compact binary frame
// of row-major little-endian float64 (or float32) features, answered
// with a binary score frame (DESIGN.md "Wire protocol"). The binary
// path decodes into pooled buffers with near-zero allocation and, with
// -precision f32, feeds float32 frames straight into the SIMD kernels.
//
// Concurrent requests are micro-batched (-max-batch rows, -max-wait
// window) into single inference passes. The queue is bounded
// (-queue); when full, requests are shed with 429 + Retry-After.
// Bodies beyond -max-request-bytes are rejected with 413. The
// model hot-reloads from -model on SIGHUP or POST /reload with zero
// failed requests — in-flight batches finish on the model they
// started with. /healthz, /readyz, /metrics (Prometheus text),
// /debug/vars, and (with -pprof) /debug/pprof serve operations.
//
// By default scoring runs in float64, bitwise-identical to offline
// scoring of the same model file. -precision f32 serves on the float32
// inference path — the packed GEMM runs AVX2/FMA kernels where the CPU
// supports them — trading the bitwise guarantee for a documented score
// tolerance (DESIGN.md "Numerical precision model") and a several-fold
// throughput gain on large batches.
//
// Models saved by recent builds carry a training-time reference
// profile; when present, the server tracks feature/score drift and
// decision-mix deviation over a sliding window (GET /drift, /metrics
// gauges; -drift-degrade fails /readyz on alarm). POST /reload?shadow=1
// loads a candidate model that re-scores a sample of live traffic in
// the background; POST /promote installs it, POST /discard drops it.
//
// The closed feedback loop (DESIGN.md §14) is opt-in: -feedback-dir
// mounts POST /feedback (analyst verdicts land in a crash-safe
// append-only store), -acquire-budget mounts GET /feedback/queue (the
// rows whose labels would help the model most, by active-learning
// informativeness), and -auto-retrain with -retrain-labeled and
// -retrain-unlabeled arms the full cycle: a drift alarm (or POST
// /retrain) fits a candidate on the verdict-merged training set,
// shadow-evaluates it on live traffic, and promotes it automatically
// when it passes the -retrain-max-flip / -retrain-max-delta gate. A
// promoted model overwrites -model, so a restart serves it again.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"targad/internal/activelearn"
	"targad/internal/buildinfo"
	"targad/internal/core"
	"targad/internal/dataset"
	"targad/internal/feedback"
	"targad/internal/mat"
	"targad/internal/monitor"
	"targad/internal/parallel"
	"targad/internal/registry"
	"targad/internal/retrain"
	"targad/internal/serve"
)

func main() {
	var (
		modelPath   = flag.String("model", "", "saved model file to serve (required unless -model-dir)")
		modelDir    = flag.String("model-dir", "", "multi-model registry directory holding manifest.json; serves every manifested model from one process (mutually exclusive with -model)")
		maxHot      = flag.Int("max-hot-models", 4, "registry mode: models kept loaded at once; past it the least-recently-used is evicted")
		addr        = flag.String("addr", ":8080", "listen address")
		maxBatch    = flag.Int("max-batch", 64, "max rows per inference micro-batch (1 disables batching)")
		maxWait     = flag.Duration("max-wait", 2*time.Millisecond, "max wait for an incomplete batch to fill")
		queueDepth  = flag.Int("queue", 256, "bounded queue depth; beyond it requests shed with 429")
		retryAfter  = flag.Duration("retry-after", time.Second, "Retry-After advertised on shed responses")
		maxReqBytes = flag.Int64("max-request-bytes", 32<<20, "max request body size in bytes; larger requests are rejected with 413")
		strategy    = flag.String("strategy", "ED", "default identification strategy (MSP, ES, ED)")
		precision   = flag.String("precision", "f64", "inference precision: f64 (bitwise-identical to offline scoring) or f32 (faster SIMD kernels, tolerance-bounded scores)")
		enablePprof = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")

		noMonitor     = flag.Bool("no-monitor", false, "disable drift monitoring even when the model carries a profile")
		monitorWindow = flag.Int("monitor-window", 0, "drift window size in scored rows (0 = monitor default)")
		driftWarn     = flag.Float64("drift-warn", 0, "PSI warn threshold (0 = monitor default)")
		driftAlarm    = flag.Float64("drift-alarm", 0, "PSI alarm threshold (0 = monitor default)")
		driftDegrade  = flag.Bool("drift-degrade", false, "fail /readyz with 503 while drift status is alarm")
		shadowSample  = flag.Float64("shadow-sample", 0.25, "fraction of live batches a shadow model re-scores")
		workers       = flag.Int("workers", 0, "compute worker pool size (default GOMAXPROCS; TARGAD_WORKERS env also honored)")
		instanceID    = flag.String("instance-id", "", "identity stamped on /healthz and /readyz for fleet probers (default host-pid-starttime)")
		showVersion   = flag.Bool("version", false, "print version and exit")

		feedbackDir   = flag.String("feedback-dir", "", "analyst verdict store directory; mounts POST /feedback (empty disables; registry mode: per-model stores under it)")
		feedbackTTL   = flag.Duration("feedback-ttl", 0, "drop verdicts older than this from retraining (0 keeps forever)")
		acquireBudget = flag.Int("acquire-budget", 0, "active-learning queue capacity; mounts GET /feedback/queue (0 disables)")
		acquireSample = flag.Float64("acquire-sample", 0.25, "fraction of live batches offered to the acquisition queue")

		autoRetrain      = flag.Bool("auto-retrain", false, "retrain on drift alarm and auto-promote through shadow evaluation (needs -feedback-dir, -retrain-labeled, -retrain-unlabeled)")
		retrainLabeled   = flag.String("retrain-labeled", "", "CSV of labeled target anomalies for retraining (type index in first column)")
		retrainUnlabeled = flag.String("retrain-unlabeled", "", "CSV of unlabeled instances for retraining (features only)")
		retrainHeader    = flag.Bool("retrain-csv-header", false, "retraining CSVs start with a header row")
		retrainEpochs    = flag.Int("retrain-epochs", 30, "training epochs for retrained candidates")
		retrainLR        = flag.Float64("retrain-lr", 1e-3, "learning rate for retrained candidates")
		retrainK         = flag.Int("retrain-k", 0, "normal clusters for retrained candidates (0 = elbow method)")
		retrainSeed      = flag.Int64("retrain-seed", 1, "random seed for retrained candidates (fixed seed = bitwise-reproducible retrains)")
		retrainMaxFlip   = flag.Float64("retrain-max-flip", 0.2, "promotion gate: max fraction of sampled decisions a candidate may flip")
		retrainMaxDelta  = flag.Float64("retrain-max-delta", 0.15, "promotion gate: max mean |S^tar delta| over sampled rows")
		retrainMinRows   = flag.Int64("retrain-min-shadow-rows", 128, "sampled rows a candidate must re-score before the gate is judged")
	)
	timeouts := serve.DefaultHTTPTimeouts()
	timeouts.RegisterFlags(flag.CommandLine)
	flag.Parse()
	if *showVersion {
		fmt.Printf("targad-serve %s\n", buildinfo.Version())
		return
	}
	if (*modelPath == "") == (*modelDir == "") {
		fmt.Fprintln(os.Stderr, "targad-serve: exactly one of -model or -model-dir is required")
		flag.Usage()
		os.Exit(2)
	}
	strat, ok := serve.ParseStrategy(*strategy)
	if !ok {
		fmt.Fprintf(os.Stderr, "targad-serve: unknown -strategy %q (want MSP, ES, or ED)\n", *strategy)
		os.Exit(2)
	}
	prec, ok := serve.ParsePrecision(*precision)
	if !ok {
		fmt.Fprintf(os.Stderr, "targad-serve: unknown -precision %q (want f64 or f32)\n", *precision)
		os.Exit(2)
	}
	if *workers > 0 {
		parallel.SetWorkers(*workers)
	}

	fitCfg := core.DefaultConfig()
	fitCfg.K = *retrainK
	fitCfg.AEEpochs = *retrainEpochs
	fitCfg.ClfEpochs = *retrainEpochs
	fitCfg.AELR = *retrainLR
	fitCfg.ClfLR = *retrainLR

	var (
		httpHandler http.Handler
		reload      func() error
		closeAll    func()
		serving     string
	)
	if *modelDir != "" {
		// Registry mode: one process hosts every manifested model,
		// routed by the X-Targad-Model / X-Targad-Tenant headers, with
		// at most -max-hot-models loaded at once. Each model gets its
		// own feedback store (under -feedback-dir) and, when its spec
		// names retraining CSVs, its own retrain cycle — all cycles
		// share one fit slot so drift alarms never fork parallel fits.
		reg, err := registry.New(registry.Config{
			Dir:    *modelDir,
			MaxHot: *maxHot,
			Base: serve.Config{
				MaxBatch:     *maxBatch,
				MaxWait:      *maxWait,
				QueueDepth:   *queueDepth,
				RetryAfter:   *retryAfter,
				MaxBodyBytes: *maxReqBytes,
				Strategy:     strat,
				Precision:    prec,
				EnablePprof:  *enablePprof,
				InstanceID:   *instanceID,
				Monitor: monitor.Config{
					WindowRows: *monitorWindow,
					WarnPSI:    *driftWarn,
					AlarmPSI:   *driftAlarm,
				},
				DisableMonitor: *noMonitor,
				DriftDegrade:   *driftDegrade,
				ShadowSample:   *shadowSample,
				AcquireSample:  *acquireSample,
				AutoRetrain:    *autoRetrain,
			},
			FeedbackRoot:  *feedbackDir,
			AcquireBudget: *acquireBudget,
			FeedbackTTL:   *feedbackTTL,
			Retrain: &retrain.Config{
				Fit:           fitCfg,
				Seed:          *retrainSeed,
				MaxFlipRate:   *retrainMaxFlip,
				MaxScoreDelta: *retrainMaxDelta,
				MinShadowRows: *retrainMinRows,
				Logf:          log.Printf,
			},
			Logf: log.Printf,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "targad-serve: %v\n", err)
			os.Exit(1)
		}
		httpHandler = reg.Handler()
		reload = reg.ReloadHot
		closeAll = reg.Close
		serving = *modelDir + " (registry, default " + reg.DefaultModel() + ")"
	} else {
		var store *feedback.Store
		if *feedbackDir != "" {
			var err error
			store, err = feedback.Open(*feedbackDir, feedback.Config{})
			if err != nil {
				fmt.Fprintf(os.Stderr, "targad-serve: opening feedback store: %v\n", err)
				os.Exit(1)
			}
			defer store.Close()
		}
		var queue *activelearn.Queue
		if *acquireBudget > 0 {
			qc := activelearn.Config{Budget: *acquireBudget}
			if store != nil {
				qc.Labeled = store.Has
			}
			queue = activelearn.New(qc)
		}

		s, err := serve.New(serve.Config{
			ModelPath:    *modelPath,
			MaxBatch:     *maxBatch,
			MaxWait:      *maxWait,
			QueueDepth:   *queueDepth,
			RetryAfter:   *retryAfter,
			MaxBodyBytes: *maxReqBytes,
			Strategy:     strat,
			Precision:    prec,
			EnablePprof:  *enablePprof,
			InstanceID:   *instanceID,
			Monitor: monitor.Config{
				WindowRows: *monitorWindow,
				WarnPSI:    *driftWarn,
				AlarmPSI:   *driftAlarm,
			},
			DisableMonitor: *noMonitor,
			DriftDegrade:   *driftDegrade,
			ShadowSample:   *shadowSample,
			Feedback:       store,
			Acquire:        queue,
			AcquireSample:  *acquireSample,
			AutoRetrain:    *autoRetrain,
			Logf:           log.Printf,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "targad-serve: %v\n", err)
			os.Exit(1)
		}

		var orch *retrain.Orchestrator
		if *autoRetrain || *retrainLabeled != "" || *retrainUnlabeled != "" {
			switch {
			case store == nil:
				fmt.Fprintln(os.Stderr, "targad-serve: retraining needs -feedback-dir (verdicts are the retraining signal)")
				os.Exit(2)
			case *retrainLabeled == "" || *retrainUnlabeled == "":
				fmt.Fprintln(os.Stderr, "targad-serve: retraining needs both -retrain-labeled and -retrain-unlabeled (the base training set verdicts merge into)")
				os.Exit(2)
			}
			labeledPath, unlabeledPath, header := *retrainLabeled, *retrainUnlabeled, *retrainHeader
			orch, err = retrain.New(s, retrain.Config{
				Store:         store,
				Train:         func() (*dataset.TrainSet, error) { return dataset.LoadTrainCSVs(labeledPath, unlabeledPath, header) },
				Fit:           fitCfg,
				Seed:          *retrainSeed,
				FeedbackTTL:   *feedbackTTL,
				MaxFlipRate:   *retrainMaxFlip,
				MaxScoreDelta: *retrainMaxDelta,
				MinShadowRows: *retrainMinRows,
				SavePath:      *modelPath, // a restart serves the promoted model
				Logf:          log.Printf,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "targad-serve: %v\n", err)
				os.Exit(1)
			}
			defer orch.Close()
			s.SetRetrain(orch)
		}
		httpHandler = s.Handler()
		reload = func() error { _, err := s.Reload(); return err }
		closeAll = s.Close
		serving = *modelPath
	}

	// The hardened listener: header/read/write/idle timeouts close the
	// slowloris window a bare http.Server leaves open (flag-tunable;
	// targad-router builds its listener the same way).
	httpSrv := serve.NewHTTPServer(*addr, httpHandler, timeouts)

	// SIGHUP hot-reloads the model file(s); ^C/SIGTERM shut down
	// gracefully, draining in-flight requests before exit.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			if err := reload(); err != nil {
				log.Printf("targad-serve: SIGHUP reload failed, keeping current model: %v", err)
			}
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("targad-serve %s: serving %s on %s (batch<=%d wait=%s queue=%d strategy=%s precision=%s kernel=%s)",
		buildinfo.Version(), serving, *addr, *maxBatch, *maxWait, *queueDepth, strat, prec, mat.KernelName())

	select {
	case <-ctx.Done():
		log.Printf("targad-serve: shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			log.Printf("targad-serve: shutdown: %v", err)
		}
		closeAll()
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			closeAll()
			fmt.Fprintf(os.Stderr, "targad-serve: %v\n", err)
			os.Exit(1)
		}
	}
}
