// Command targad-synth materializes one of the synthetic benchmark
// datasets as CSV files, so the cmd/targad workflow (and any external
// tool) can consume them:
//
//	targad-synth -dataset KDDCUP99 -scale 0.05 -out data/
//
// writes into the output directory:
//
//	labeled.csv      target-type index in column 1, features after
//	unlabeled.csv    unlabeled training pool (features only)
//	test.csv         test features
//	test_truth.csv   per-row ground truth: kind (0 normal, 1 target,
//	                 2 non-target) and sub-type index
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"targad/internal/buildinfo"
	"targad/internal/dataset"
	"targad/internal/dataset/synth"
	"targad/internal/mat"
)

func main() {
	var (
		name    = flag.String("dataset", "UNSW-NB15", "profile: UNSW-NB15, KDDCUP99, NSL-KDD, SQB")
		scale   = flag.Float64("scale", 0.05, "fraction of the paper's Table I sizes")
		contam  = flag.Float64("contamination", 0, "anomaly fraction of the unlabeled pool (0 = paper default 5%)")
		labeled = flag.Int("labeled", 0, "labeled anomalies per target type (0 = profile default, scaled)")
		seed    = flag.Int64("seed", 1, "generation seed")
		outDir  = flag.String("out", ".", "output directory (created if missing)")

		showVersion = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Printf("targad-synth %s\n", buildinfo.Version())
		return
	}

	profile, ok := synth.ProfileByName(*name)
	if !ok {
		fatal(fmt.Errorf("unknown dataset %q", *name))
	}
	bundle, err := synth.Generate(profile, synth.Options{
		Scale:          *scale,
		Contamination:  *contam,
		LabeledPerType: *labeled,
		Seed:           *seed,
	})
	if err != nil {
		fatal(err)
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}

	writeLabeled(filepath.Join(*outDir, "labeled.csv"), bundle.Train)
	writeMatrix(filepath.Join(*outDir, "unlabeled.csv"), bundle.Train.Unlabeled)
	writeMatrix(filepath.Join(*outDir, "test.csv"), bundle.Test.X)
	writeTruth(filepath.Join(*outDir, "test_truth.csv"), bundle.Test)

	n, tg, nt := bundle.Test.Counts()
	fmt.Fprintf(os.Stderr,
		"targad-synth: %s at scale %g → %d labeled, %d unlabeled, test %d normal / %d target / %d non-target in %s\n",
		profile.Name, *scale, bundle.Train.Labeled.Rows, bundle.Train.Unlabeled.Rows, n, tg, nt, *outDir)
}

func writeLabeled(path string, train *dataset.TrainSet) {
	f := create(path)
	defer f.Close()
	w := bufio.NewWriter(f)
	defer w.Flush()
	for i := 0; i < train.Labeled.Rows; i++ {
		fmt.Fprint(w, train.LabeledType[i])
		for _, v := range train.Labeled.Row(i) {
			fmt.Fprint(w, ",", strconv.FormatFloat(v, 'g', -1, 64))
		}
		fmt.Fprintln(w)
	}
}

func writeMatrix(path string, m *mat.Matrix) {
	f := create(path)
	defer f.Close()
	if err := dataset.WriteCSV(f, m, nil); err != nil {
		fatal(err)
	}
}

func writeTruth(path string, e *dataset.EvalSet) {
	f := create(path)
	defer f.Close()
	w := bufio.NewWriter(f)
	defer w.Flush()
	fmt.Fprintln(w, "kind,type")
	for i, k := range e.Kind {
		ty := 0
		if e.Type != nil {
			ty = e.Type[i]
		}
		fmt.Fprintf(w, "%d,%d\n", int(k), ty)
	}
}

func create(path string) *os.File {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	return f
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "targad-synth:", err)
	os.Exit(1)
}
