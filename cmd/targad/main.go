// Command targad trains a TargAD model on CSV data and scores a CSV
// of test instances — the quick adoption path for using the library on
// your own tabular data.
//
// The training data comes in two files: -labeled holds labeled target
// anomalies with the anomaly type index (0..m-1) in the FIRST column
// and features after it; -unlabeled holds raw feature rows. The test
// file (-score) holds raw feature rows; one score per row is written
// to stdout (or -o), higher = more likely a target anomaly.
//
// Example:
//
//	targad -labeled labeled.csv -unlabeled pool.csv -score test.csv \
//	       -alpha 0.05 -k 0 -epochs 30
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"targad/internal/buildinfo"
	"targad/internal/core"
	"targad/internal/dataset"
	"targad/internal/mat"
)

func main() {
	var (
		labeledPath   = flag.String("labeled", "", "CSV of labeled target anomalies (type index in first column)")
		unlabeledPath = flag.String("unlabeled", "", "CSV of unlabeled instances (features only)")
		scorePath     = flag.String("score", "", "CSV of instances to score (features only)")
		outPath       = flag.String("o", "", "write scores here instead of stdout")
		hasHeader     = flag.Bool("header", false, "CSV files have a header row")
		alpha         = flag.Float64("alpha", 0.05, "candidate-selection threshold (top fraction by reconstruction error)")
		k             = flag.Int("k", 0, "number of normal clusters (0 = elbow method)")
		eta           = flag.Float64("eta", 1, "autoencoder trade-off eta")
		lambda1       = flag.Float64("lambda1", 0.1, "weight of L_OE")
		lambda2       = flag.Float64("lambda2", 1, "weight of L_RE")
		epochs        = flag.Int("epochs", 30, "training epochs for autoencoders and classifier")
		lr            = flag.Float64("lr", 1e-3, "learning rate for both stages")
		seed          = flag.Int64("seed", 1, "random seed")
		savePath      = flag.String("save", "", "write the trained model here")
		loadPath      = flag.String("load", "", "load a trained model instead of training (-labeled/-unlabeled ignored)")
		normalize     = flag.Bool("normalize", true, "min-max scale features using the training data's ranges")
		timeout       = flag.Duration("timeout", 0, "abort training/scoring after this long (e.g. 10m); 0 disables")
		checkpoint    = flag.String("checkpoint", "", "checkpoint file for crash-safe training; an interrupted run rerun with the same flags resumes exactly where it stopped")
		showVersion   = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Printf("targad %s\n", buildinfo.Version())
		return
	}
	if *scorePath == "" || (*loadPath == "" && (*labeledPath == "" || *unlabeledPath == "")) {
		fmt.Fprintln(os.Stderr, "targad: need -score plus either -load or both -labeled and -unlabeled")
		flag.Usage()
		os.Exit(2)
	}

	// ^C/SIGTERM and -timeout cancel cooperatively at the next epoch
	// boundary; with -checkpoint set, the progress made so far is on
	// disk and the same command resumes it.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *loadPath != "" {
		scoreWithSavedModel(ctx, *loadPath, *scorePath, *outPath, *hasHeader)
		return
	}

	labeledRaw := loadCSV(*labeledPath, *hasHeader)
	unlabeled := loadCSV(*unlabeledPath, *hasHeader)
	test := loadCSV(*scorePath, *hasHeader)

	// Split the type column off the labeled file.
	if labeledRaw.Cols < 2 {
		fatal(fmt.Errorf("labeled CSV needs a type column plus features, got %d columns", labeledRaw.Cols))
	}
	labeled := mat.New(labeledRaw.Rows, labeledRaw.Cols-1)
	types := make([]int, labeledRaw.Rows)
	maxType := 0
	for i := 0; i < labeledRaw.Rows; i++ {
		row := labeledRaw.Row(i)
		t := int(row[0])
		if t < 0 {
			fatal(fmt.Errorf("labeled row %d has negative type %v", i, row[0]))
		}
		types[i] = t
		if t > maxType {
			maxType = t
		}
		copy(labeled.Row(i), row[1:])
	}

	if *normalize {
		pool := dataset.MustVStack(unlabeled, labeled)
		scaler, err := dataset.FitMinMax(pool)
		if err != nil {
			fatal(err)
		}
		for _, m := range []*mat.Matrix{labeled, unlabeled, test} {
			if err := scaler.Transform(m); err != nil {
				fatal(err)
			}
		}
	}

	train := &dataset.TrainSet{
		Labeled:        labeled,
		LabeledType:    types,
		NumTargetTypes: maxType + 1,
		Unlabeled:      unlabeled,
	}

	cfg := core.DefaultConfig()
	cfg.Alpha = *alpha
	cfg.K = *k
	cfg.Eta = *eta
	cfg.Lambda1 = *lambda1
	cfg.Lambda2 = *lambda2
	cfg.AEEpochs = *epochs
	cfg.ClfEpochs = *epochs
	cfg.AELR = *lr
	cfg.ClfLR = *lr
	cfg.Checkpoint = core.CheckpointConfig{Path: *checkpoint}
	model := core.New(cfg, *seed)

	fmt.Fprintf(os.Stderr, "targad: training on %d labeled (m=%d types) + %d unlabeled instances, %d features\n",
		labeled.Rows, train.NumTargetTypes, unlabeled.Rows, unlabeled.Cols)
	start := time.Now()
	if err := model.Fit(ctx, train); err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintf(os.Stderr, "targad: interrupted after %v: %v\n", time.Since(start).Round(time.Millisecond), err)
			if *checkpoint != "" {
				fmt.Fprintf(os.Stderr, "targad: progress saved to %s; rerun the same command to resume\n", *checkpoint)
			}
			os.Exit(130)
		}
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "targad: trained with k=%d normal clusters\n", model.NumNormalClusters())

	if *savePath != "" {
		f, err := os.Create(*savePath)
		if err != nil {
			fatal(err)
		}
		if err := model.Save(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "targad: model saved to %s\n", *savePath)
	}

	scores, err := model.Score(ctx, test)
	if err != nil {
		fatal(err)
	}
	out := os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		out = f
	}
	w := bufio.NewWriter(out)
	defer w.Flush()
	for _, s := range scores {
		fmt.Fprintln(w, strconv.FormatFloat(s, 'g', -1, 64))
	}
}

// scoreWithSavedModel loads a serialized model and scores a CSV.
// Note: a saved model expects inputs in the same normalized space it
// was trained in; pass pre-normalized features when using -load.
func scoreWithSavedModel(ctx context.Context, modelPath, scorePath, outPath string, header bool) {
	f, err := os.Open(modelPath)
	if err != nil {
		fatal(err)
	}
	model, err := core.Load(bufio.NewReader(f))
	f.Close()
	if err != nil {
		fatal(err)
	}
	test := loadCSV(scorePath, header)
	scores, err := model.Score(ctx, test)
	if err != nil {
		fatal(err)
	}
	out := os.Stdout
	if outPath != "" {
		of, err := os.Create(outPath)
		if err != nil {
			fatal(err)
		}
		defer of.Close()
		out = of
	}
	w := bufio.NewWriter(out)
	defer w.Flush()
	for _, s := range scores {
		fmt.Fprintln(w, strconv.FormatFloat(s, 'g', -1, 64))
	}
}

func loadCSV(path string, header bool) *mat.Matrix {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	m, _, err := dataset.LoadCSV(bufio.NewReader(f), header)
	if err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	return m
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "targad:", err)
	os.Exit(1)
}
