// Command shapecheck is a development aid: it prints the AUPRC of a
// few representative detectors on one dataset so generator tuning can
// be checked quickly. It is not part of the benchmark harness.
package main

import (
	"context"
	"flag"
	"fmt"
	"time"

	"targad/internal/buildinfo"
	"targad/internal/dataset/synth"
	"targad/internal/detector"
	"targad/internal/experiments"
	"targad/internal/metrics"
)

func main() {
	name := flag.String("dataset", "UNSW-NB15", "profile name")
	models := flag.String("models", "iForest,DeepSAD,DevNet,PReNet,TargAD", "comma list")
	diag := flag.Bool("diag", false, "print TargAD candidate diagnostics")
	seeds := flag.Int("seeds", 1, "average over this many seeds")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Printf("shapecheck %s\n", buildinfo.Version())
		return
	}
	rc := experiments.Fast()
	p, ok := synth.ProfileByName(*name)
	if !ok {
		panic("unknown profile")
	}
	if *diag {
		diagnose(rc, p)
		return
	}
	var sel []string
	cur := ""
	for _, c := range *models + "," {
		if c == ',' {
			if cur != "" {
				sel = append(sel, cur)
			}
			cur = ""
		} else {
			cur += string(c)
		}
	}
	for _, mn := range sel {
		m, ok := experiments.ModelByName(rc, mn)
		if !ok {
			fmt.Println("unknown model", mn)
			continue
		}
		var sumP, sumR float64
		t0 := time.Now()
		for sd := 1; sd <= *seeds; sd++ {
			b, err := synth.Generate(p, synth.Options{Scale: rc.Scale, Seed: int64(sd), LabeledPerType: rc.LabeledPerType})
			if err != nil {
				panic(err)
			}
			det := m.New(int64(sd))
			if va, ok := det.(detector.ValidationAware); ok {
				va.SetValidation(b.Val)
			}
			if err := det.Fit(context.Background(), b.Train); err != nil {
				panic(err)
			}
			s, err := det.Score(context.Background(), b.Test.X)
			if err != nil {
				panic(err)
			}
			prc, _ := metrics.AUPRC(s, b.Test.TargetLabels())
			roc, _ := metrics.AUROC(s, b.Test.TargetLabels())
			sumP += prc
			sumR += roc
		}
		n := float64(*seeds)
		fmt.Printf("%-10s AUPRC=%.3f AUROC=%.3f (%v)\n", m.Name, sumP/n, sumR/n, time.Since(t0).Round(time.Millisecond))
	}
}
