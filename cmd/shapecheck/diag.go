package main

import (
	"context"
	"fmt"

	"targad/internal/core"
	"targad/internal/dataset"
	"targad/internal/dataset/synth"
	"targad/internal/experiments"
	"targad/internal/metrics"
)

// diagnose prints TargAD internals: candidate-set composition and how
// many unlabeled target anomalies escaped into D_U^N.
func diagnose(rc experiments.RunConfig, p synth.Profile) {
	b, err := synth.Generate(p, synth.Options{Scale: rc.Scale, Seed: 1, LabeledPerType: rc.LabeledPerType})
	if err != nil {
		panic(err)
	}
	cfg := core.DefaultConfig()
	cfg.AEEpochs = rc.AEEpochs
	cfg.ClfEpochs = rc.ClfEpochs
	cfg.AELR = rc.AELR
	cfg.ClfLR = rc.ClfLR
	cfg.KMax = 6
	cfg.ClfEpochs = 150
	cfg.ClfLR = 1e-3
	cfg.K = 3
	cfg.AEHidden = []int{12, 4}
	cfg.AEEpochs = 20
	cfg.EpochHook = func(epoch int, mo *core.Model) {
		s, _ := mo.Score(context.Background(), b.Test.X)
		prc, _ := metrics.AUPRC(s, b.Test.TargetLabels())
		fmt.Printf("epoch %d: AUPRC=%.3f loss=%.4f\n", epoch, prc, mo.EpochLosses[len(mo.EpochLosses)-1])
	}
	m := core.New(cfg, 1)
	if err := m.Fit(context.Background(), b.Train); err != nil {
		panic(err)
	}
	var candT, candNT, candN int
	inCand := map[int]bool{}
	for _, row := range m.CandidateIndices() {
		inCand[row] = true
		switch b.Train.UnlabeledKind[row] {
		case dataset.KindTarget:
			candT++
		case dataset.KindNonTarget:
			candNT++
		default:
			candN++
		}
	}
	var poolT, poolNT int
	var escT, escNT int
	for row, k := range b.Train.UnlabeledKind {
		switch k {
		case dataset.KindTarget:
			poolT++
			if !inCand[row] {
				escT++
			}
		case dataset.KindNonTarget:
			poolNT++
			if !inCand[row] {
				escNT++
			}
		}
	}
	fmt.Printf("k=%d  D_U^A: %d normal, %d/%d target, %d/%d non-target; escaped to D_U^N: %d targets, %d non-targets\n",
		m.NumNormalClusters(), candN, candT, poolT, candNT, poolNT, escT, escNT)
	s, _ := m.Score(context.Background(), b.Test.X)
	prc, _ := metrics.AUPRC(s, b.Test.TargetLabels())
	fmt.Printf("TargAD test AUPRC=%.3f\n", prc)
	subsetAUPRC("target-vs-normal", s, b.Test.Kind, dataset.KindNormal)
	subsetAUPRC("target-vs-nontarget", s, b.Test.Kind, dataset.KindNonTarget)
	pw, _ := experiments.ModelByName(rc, "PIA-WAL")
	det := pw.New(1)
	if err := det.Fit(context.Background(), b.Train); err != nil {
		panic(err)
	}
	s2, _ := det.Score(context.Background(), b.Test.X)
	prc2, _ := metrics.AUPRC(s2, b.Test.TargetLabels())
	fmt.Printf("PIA-WAL test AUPRC=%.3f\n", prc2)
	subsetAUPRC("target-vs-normal", s2, b.Test.Kind, dataset.KindNormal)
	subsetAUPRC("target-vs-nontarget", s2, b.Test.Kind, dataset.KindNonTarget)
}

// subsetAUPRC scores targets against only one negative kind.
func subsetAUPRC(name string, s []float64, kinds []dataset.Kind, neg dataset.Kind) {
	var ss []float64
	var ll []bool
	for i, k := range kinds {
		if k == dataset.KindTarget || k == neg {
			ss = append(ss, s[i])
			ll = append(ll, k == dataset.KindTarget)
		}
	}
	v, _ := metrics.AUPRC(ss, ll)
	fmt.Printf("  %s AUPRC=%.3f\n", name, v)
}
