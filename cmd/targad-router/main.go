// Command targad-router fronts a fleet of targad-serve replicas with
// the resilience layer scoring clients should not have to build
// themselves (DESIGN.md §13).
//
//	targad-router -addr :8090 \
//	  -backends http://127.0.0.1:8081,http://127.0.0.1:8082,http://127.0.0.1:8083
//
// POST /score accepts exactly what targad-serve accepts — JSON or
// binary application/x-targad-frame bodies — and forwards it opaquely,
// so scores through the router are bitwise-identical to a direct
// backend response. Requests carrying an X-Targad-Tenant header are
// pinned to a home replica on a consistent-hash ring (warm drift
// windows, stable batch mixes); tenantless requests round-robin. A
// backend over its bounded-load share overflows to the next ring
// position.
//
// A prober walks every replica's /readyz each -probe-interval, driving
// a per-backend state machine (up, degraded, down, recovering) keyed
// to the replica's -instance-id, so a restarted process re-proves
// itself before it is trusted. Failed forwards are retried on the next
// candidate (scoring is idempotent) under a fleet-wide retry budget
// with full-jitter backoff; -hedge-quantile arms tail-latency hedging;
// a per-backend circuit breaker sheds a persistently failing replica
// until a half-open trial succeeds. The router answers 503 +
// Retry-After only when no candidate remains.
//
// /healthz, /readyz (200 while >=1 backend is selectable), /metrics
// (targad_router_* Prometheus text), and /backends (JSON fleet state)
// serve operations. SIGTERM drains in-flight requests before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"targad/internal/buildinfo"
	"targad/internal/fleet"
	"targad/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", ":8090", "listen address")
		backends = flag.String("backends", "", "comma-separated targad-serve base URLs (required)")

		tenantHeader = flag.String("tenant-header", "X-Targad-Tenant", "header that pins a request to its ring position")
		vnodes       = flag.Int("vnodes", 128, "virtual nodes per backend on the consistent-hash ring")
		loadFactor   = flag.Float64("load-factor", 1.25, "bounded-load multiple of a backend's fair share before a tenant overflows")

		probeInterval = flag.Duration("probe-interval", time.Second, "health probe period per backend")
		probeTimeout  = flag.Duration("probe-timeout", 500*time.Millisecond, "timeout of one /readyz probe")
		failThresh    = flag.Int("fail-threshold", 3, "consecutive probe failures that take a backend down")
		recoverThresh = flag.Int("recover-threshold", 2, "consecutive probe successes that bring a backend back up")

		tryTimeout  = flag.Duration("try-timeout", 2*time.Second, "timeout of one forwarded attempt")
		maxRetries  = flag.Int("max-retries", 2, "max re-forwards after the first attempt")
		retryBudget = flag.Float64("retry-budget", 0.2, "fleet-wide retry ratio: retries admitted while retries < ratio*requests + 10")
		backoffBase = flag.Duration("backoff-base", 5*time.Millisecond, "base of the full-jitter exponential backoff between attempts")
		backoffMax  = flag.Duration("backoff-max", 100*time.Millisecond, "cap of the backoff between attempts")

		hedgeQuantile = flag.Float64("hedge-quantile", 0, "latency quantile (0,1) past which a hedge fires; 0 disables hedging")
		hedgeMin      = flag.Duration("hedge-min", time.Millisecond, "floor of the hedge delay")

		cbFailures = flag.Int("cb-failures", 5, "consecutive forward failures that open a backend's circuit breaker")
		cbCooldown = flag.Duration("cb-cooldown", 2*time.Second, "how long an open breaker sheds before its half-open trial")

		maxReqBytes = flag.Int64("max-request-bytes", 32<<20, "max request body size in bytes; larger requests are rejected with 413")
		retryAfter  = flag.Duration("retry-after", time.Second, "Retry-After advertised on 503 responses")
		seed        = flag.Int64("seed", 1, "seed of the backoff-jitter RNG")
		showVersion = flag.Bool("version", false, "print version and exit")
	)
	timeouts := serve.DefaultHTTPTimeouts()
	timeouts.RegisterFlags(flag.CommandLine)
	flag.Parse()
	if *showVersion {
		fmt.Printf("targad-router %s\n", buildinfo.Version())
		return
	}
	if *backends == "" {
		fmt.Fprintln(os.Stderr, "targad-router: -backends is required")
		flag.Usage()
		os.Exit(2)
	}
	var urls []string
	for _, u := range strings.Split(*backends, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}

	r, err := fleet.New(fleet.Config{
		Backends:         urls,
		TenantHeader:     *tenantHeader,
		VNodes:           *vnodes,
		LoadFactor:       *loadFactor,
		ProbeInterval:    *probeInterval,
		ProbeTimeout:     *probeTimeout,
		FailThreshold:    *failThresh,
		RecoverThreshold: *recoverThresh,
		TryTimeout:       *tryTimeout,
		MaxRetries:       *maxRetries,
		RetryBudget:      *retryBudget,
		BackoffBase:      *backoffBase,
		BackoffMax:       *backoffMax,
		HedgeQuantile:    *hedgeQuantile,
		HedgeMin:         *hedgeMin,
		CBFailures:       *cbFailures,
		CBCooldown:       *cbCooldown,
		MaxBodyBytes:     *maxReqBytes,
		RetryAfter:       *retryAfter,
		Seed:             *seed,
		Logf:             log.Printf,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "targad-router: %v\n", err)
		os.Exit(1)
	}

	// The same hardened listener targad-serve uses: header/read/write/
	// idle timeouts close the slowloris window.
	httpSrv := serve.NewHTTPServer(*addr, r.Handler(), timeouts)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("targad-router %s: fronting %d backends on %s (retries<=%d budget=%.2f hedge=%g cb=%d/%s)",
		buildinfo.Version(), len(urls), *addr, *maxRetries, *retryBudget, *hedgeQuantile, *cbFailures, *cbCooldown)

	select {
	case <-ctx.Done():
		log.Printf("targad-router: shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			log.Printf("targad-router: shutdown: %v", err)
		}
		r.Close()
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			r.Close()
			fmt.Fprintf(os.Stderr, "targad-router: %v\n", err)
			os.Exit(1)
		}
	}
}
